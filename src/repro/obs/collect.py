"""Pull-collection: walk a finished run and fill a metrics registry.

Instrumentation here is deliberately *pull-based*: the simulation
layers maintain their own plain integer counters (the engine's
dispatch count, the wheel's cascade count, a buffer's drop count —
most predate this module), and this collector mirrors them into
:class:`~repro.obs.metrics.MetricsRegistry` instruments once the run
is over.  That is what makes the two hard guarantees cheap:

* **zero perturbation** — collection never touches simulation state,
  so a run with ``--metrics`` produces byte-identical traces and
  study output to one without (pinned by the test battery and the
  ``bench_pipeline`` metrics phase);
* **zero cost when disabled** — the only always-on additions to hot
  paths are single integer bumps/compares (high-water marks,
  coalescing hit counts), measured well under the 10% pipeline budget.

Layers covered, per the instrumentation map:

====================  =================================================
``sim.engine``        events scheduled/dispatched, queue depth +
                      peak, virtual seconds, wall seconds and
                      virtual:wall ratio (volatile)
``sim.power``         wakeups, interrupts, busy time, active/idle
                      residency, energy, tick-device ticks/skips
``linuxkern.wheel``   cascades, cascaded timers, pending, per-tv
                      occupancy (labelled ``cpu``/``level``)
``vistakern``         ring pending, lookaside free, clock period,
                      coalescing merge hits/misses and added delay
``tracing.relay/etw`` records emitted/retained/dropped/drained,
                      buffer high-water, capacity
``core.streaming``    events folded, live + peak aggregation state,
                      groups and episodes routed, late waits
``tracing.formats``   trace loads/saves and bytes per registered
                      format (labelled ``format``)
``core.shard``        sharded analyses, shard-extraction runs, shard
                      count, worker-pool fallbacks
====================  =================================================
"""

from __future__ import annotations

from typing import Iterable, Optional

from .metrics import MetricsRegistry, MetricsSnapshot

__all__ = ["collect_run", "collect_kernel", "collect_sec51",
           "collect_sink", "collect_streaming", "collect_trace_io"]

_NS = 1e-9


def _merge(base: dict, extra: dict) -> dict:
    merged = dict(base)
    merged.update(extra)
    return merged


def collect_run(run, *, registry: Optional[MetricsRegistry] = None,
                sinks: Iterable = (),
                labels: Optional[dict] = None) -> MetricsSnapshot:
    """Collect every layer of one :class:`~repro.kern.machine
    .WorkloadRun` into ``registry`` (a fresh one by default) and
    return the frozen snapshot.

    ``sinks`` adds live sinks that were attached via ``sinks=`` on the
    runner (streaming suites attached through ``kernel.attach_sink``
    are discovered automatically).  Pass a shared ``registry`` plus
    per-run ``labels`` to aggregate several runs into one exposition
    (the ``timerstudy study --metrics`` path).
    """
    registry = registry if registry is not None else MetricsRegistry()
    if labels is None:
        labels = {"os": run.trace.os_name,
                  "workload": run.trace.workload}
    duration_ns = run.trace.duration_ns
    collect_kernel(run.kernel, duration_ns, registry, labels)
    seen = set()
    for sink in _walk_sinks(run.kernel.sink):
        seen.add(id(sink))
        collect_sink(sink, registry, labels)
    for sink in sinks:
        if id(sink) not in seen:
            collect_sink(sink, registry, labels)
    return registry.snapshot()


def collect_kernel(kernel, duration_ns: int,
                   registry: MetricsRegistry, labels: dict) -> None:
    """Engine, power and OS-model metrics for one backend instance."""
    _collect_engine(kernel.engine, duration_ns, registry, labels)
    _collect_power(kernel.power, duration_ns, registry, labels)
    _collect_ticks(kernel, registry, labels)
    if hasattr(kernel, "bases"):          # Linux timer-wheel forest
        _collect_wheels(kernel, registry, labels)
    if hasattr(kernel, "_ring"):          # Vista KTIMER ring
        _collect_ring(kernel, registry, labels)


# -- sim.engine -----------------------------------------------------------

def _collect_engine(engine, duration_ns: int,
                    registry: MetricsRegistry, labels: dict) -> None:
    names = tuple(labels)
    registry.counter(
        "repro_engine_events_scheduled_total",
        "Events ever pushed onto the simulation heap.",
        names).set_total(engine._seq, **labels)
    registry.counter(
        "repro_engine_events_dispatched_total",
        "Callbacks actually dispatched by the engine.",
        names).set_total(engine.dispatched, **labels)
    registry.gauge(
        "repro_engine_queue_depth",
        "Live events still pending at collection time.",
        names).set(engine.pending_count(), **labels)
    registry.gauge(
        "repro_engine_queue_depth_peak",
        "High-water mark of live pending events.",
        names).set(engine.peak_pending, **labels)
    registry.gauge(
        "repro_engine_virtual_seconds",
        "Virtual time simulated by this run.",
        names).set(duration_ns * _NS, **labels)
    wall = registry.gauge(
        "repro_engine_wall_seconds",
        "Wall-clock time spent inside the engine run loop.",
        names, volatile=True)
    wall.set(engine.wall_ns * _NS, **labels)
    ratio = registry.gauge(
        "repro_engine_virtual_wall_ratio",
        "Virtual seconds simulated per wall second (higher = faster).",
        names, volatile=True)
    ratio.set(duration_ns / engine.wall_ns if engine.wall_ns else 0.0,
              **labels)
    _collect_sched(engine.scheduler, registry, labels)


# -- sim.sched ------------------------------------------------------------

def _collect_sched(sched, registry: MetricsRegistry,
                   labels: dict) -> None:
    """Engine-scheduler internals: wheel turning, lazy-cancel garbage
    and its reclamation (heap runs report the same series; the wheel-
    only counters simply stay zero)."""
    labels = _merge(labels, {"scheduler": sched.kind})
    names = tuple(labels)
    registry.counter(
        "repro_engine_sched_bucket_drains_total",
        "Expired buckets drained in batch by the engine scheduler.",
        names).set_total(sched.bucket_drains, **labels)
    registry.counter(
        "repro_engine_sched_cascades_total",
        "Higher-level bucket cascades performed by the engine's own "
        "timing wheel.", names).set_total(sched.cascades, **labels)
    registry.counter(
        "repro_engine_sched_cascaded_timers_total",
        "Events refiled down a level by engine-wheel cascades.",
        names).set_total(sched.cascaded_timers, **labels)
    registry.counter(
        "repro_engine_sched_compactions_total",
        "Garbage-compaction sweeps over the scheduler's containers.",
        names).set_total(sched.compactions, **labels)
    registry.counter(
        "repro_engine_sched_reclaimed_total",
        "Cancelled entries reclaimed early by compaction sweeps.",
        names).set_total(sched.reclaimed, **labels)
    registry.gauge(
        "repro_engine_sched_garbage",
        "Cancelled entries still pinned in the scheduler at "
        "collection time.", names).set(sched.garbage, **labels)
    occupancy = registry.gauge(
        "repro_engine_sched_occupancy",
        "Entries per scheduler region (due queue, wheel levels, "
        "far-future overflow).", names + ("level",))
    for level, count in sched.occupancy().items():
        occupancy.set(count, level=level, **labels)
    shards = getattr(sched, "shards", None)
    if shards is None:
        return
    shard_occupancy = registry.gauge(
        "repro_engine_sched_shard_occupancy",
        "Entries per scheduler region on each per-CPU wheel shard.",
        names + ("cpu", "level"))
    shard_live = registry.gauge(
        "repro_engine_sched_shard_live",
        "Live events pending on each per-CPU wheel shard.",
        names + ("cpu",))
    for cpu, shard in enumerate(shards):
        shard_live.set(shard.live, cpu=str(cpu), **labels)
        for level, count in shard.occupancy().items():
            shard_occupancy.set(count, cpu=str(cpu), level=level,
                                **labels)


# -- sim.power ------------------------------------------------------------

def _collect_power(power, duration_ns: int,
                   registry: MetricsRegistry, labels: dict) -> None:
    names = tuple(labels)
    registry.counter(
        "repro_power_wakeups_total",
        "Idle wakeups (interrupts that found the CPU sleeping).",
        names).set_total(power.wakeups, **labels)
    registry.counter(
        "repro_power_interrupts_total",
        "Hardware timer interrupts serviced.",
        names).set_total(power.interrupts, **labels)
    busy_ns = min(power.busy_ns, duration_ns)
    state_names = names + ("state",)
    residency = registry.gauge(
        "repro_power_residency_seconds",
        "Virtual time spent per CPU power state.",
        state_names)
    residency.set(busy_ns * _NS, state="active", **labels)
    residency.set((duration_ns - busy_ns) * _NS, state="idle", **labels)
    registry.gauge(
        "repro_power_energy_joules",
        "Modelled energy over the run (Section 5.3 constants).",
        names).set(power.energy_joules(duration_ns), **labels)
    registry.gauge(
        "repro_power_average_watts",
        "Modelled average power draw.",
        names).set(power.average_watts(duration_ns), **labels)


def _collect_ticks(kernel, registry: MetricsRegistry,
                   labels: dict) -> None:
    devices = []
    if hasattr(kernel, "ticks"):       # Linux per-CPU ticks
        devices = [(f"tick{cpu}", tick)
                   for cpu, tick in enumerate(kernel.ticks)]
    elif hasattr(kernel, "clock"):     # Vista clock interrupt
        devices = [("clock", kernel.clock)]
    if not devices:
        return
    names = tuple(labels) + ("device",)
    ticks = registry.counter(
        "repro_tick_interrupts_total",
        "Periodic device ticks elapsed (fired or skipped).", names)
    skipped = registry.counter(
        "repro_tick_skipped_total",
        "Ticks elided by the idle predicate (NOHZ / tick skipping) — "
        "each one is an avoided power-state transition.", names)
    for device_name, device in devices:
        ticks.set_total(device.ticks, device=device_name, **labels)
        skipped.set_total(device.skipped, device=device_name, **labels)


# -- linuxkern.wheel ------------------------------------------------------

def _collect_wheels(kernel, registry: MetricsRegistry,
                    labels: dict) -> None:
    cpu_names = tuple(labels) + ("cpu",)
    cascades = registry.counter(
        "repro_wheel_cascades_total",
        "Higher-level bucket cascades processed (Varghese-Lauck "
        "redistribution work).", cpu_names)
    cascaded = registry.counter(
        "repro_wheel_cascaded_timers_total",
        "Timers moved down a level by cascades.", cpu_names)
    pending = registry.gauge(
        "repro_wheel_pending",
        "Timers pending in the wheel at collection time.", cpu_names)
    occupancy = registry.gauge(
        "repro_wheel_occupancy",
        "Pending timers per wheel level (tv1..tv5).",
        tuple(labels) + ("cpu", "level"))
    for base in kernel.bases:
        cpu = str(base.cpu)
        wheel = base.wheel
        cascades.set_total(wheel.cascades, cpu=cpu, **labels)
        cascaded.set_total(wheel.cascaded_timers, cpu=cpu, **labels)
        pending.set(wheel.pending_count, cpu=cpu, **labels)
        for level, count in enumerate(wheel.occupancy()):
            occupancy.set(count, cpu=cpu, level=f"tv{level + 1}",
                          **labels)


# -- vistakern ------------------------------------------------------------

def _collect_ring(kernel, registry: MetricsRegistry,
                  labels: dict) -> None:
    names = tuple(labels)
    live = sum(1 for deadline, seq, timer in kernel._ring
               if timer._seq == seq and timer.inserted)
    registry.gauge(
        "repro_ring_pending",
        "KTIMERs inserted in the expiration ring at collection time.",
        names).set(live, **labels)
    registry.gauge(
        "repro_ring_lookaside_free",
        "KTIMER addresses parked on the lookaside list (the Section "
        "3.3 reuse pool).",
        names).set(len(kernel._lookaside), **labels)
    registry.gauge(
        "repro_clock_period_ns",
        "Effective clock-interrupt period (timeBeginPeriod result).",
        names).set(kernel.clock_period_ns, **labels)
    registry.counter(
        "repro_coalescing_hits_total",
        "Coalescable arms whose deadline was shifted onto a shared "
        "alignment boundary.",
        names).set_total(kernel.coalescing_hits, **labels)
    registry.counter(
        "repro_coalescing_misses_total",
        "Coalescable arms left at their requested deadline (tolerance "
        "too small for any alignment period).",
        names).set_total(kernel.coalescing_misses, **labels)
    registry.counter(
        "repro_coalescing_shift_ns_total",
        "Total expiry delay added by coalescing alignment.",
        names).set_total(kernel.coalescing_shift_ns, **labels)


# -- tracing sinks --------------------------------------------------------

def _walk_sinks(sink) -> Iterable:
    """Flatten a sink chain (TeeSink fans out to children; stamping
    wrappers like HostStampSink forward to one wrapped sink)."""
    children = getattr(sink, "sinks", None)
    if children is None:
        inner = getattr(sink, "sink", None)
        if inner is not None:
            yield from _walk_sinks(inner)
        else:
            yield sink
        return
    for child in children:
        yield from _walk_sinks(child)


def _sink_kind(sink) -> Optional[str]:
    from ..tracing.etw import EtwSession
    from ..tracing.relay import RelayBuffer
    if isinstance(sink, RelayBuffer):
        return "relay"
    if isinstance(sink, EtwSession):
        return "etw"
    return None


def collect_sink(sink, registry: MetricsRegistry, labels: dict) -> None:
    """Metrics for one sink: trace buffers and streaming reducers are
    recognised; anything else (progress printers, counting sinks) is
    skipped."""
    from ..core.streaming import StreamingSuite
    if isinstance(sink, StreamingSuite):
        collect_streaming(sink, registry, labels)
        return
    kind = _sink_kind(sink)
    if kind is None:
        return
    names = tuple(labels) + ("sink",)
    registry.counter(
        "repro_sink_records_total",
        "Records offered to the trace buffer (retained + dropped).",
        names).set_total(sink.emitted, sink=kind, **labels)
    registry.counter(
        "repro_sink_dropped_total",
        "Records lost to the capacity bound (the paper sized buffers "
        "so this stayed zero).",
        names).set_total(sink.dropped, sink=kind, **labels)
    registry.counter(
        "repro_sink_drained_total",
        "Records read out by the user-space reader.",
        names).set_total(sink.drained, sink=kind, **labels)
    registry.gauge(
        "repro_sink_retained",
        "Records currently held in the buffer.",
        names).set(len(sink), sink=kind, **labels)
    registry.gauge(
        "repro_sink_high_water",
        "Maximum records ever held at once.",
        names).set(sink.high_water, sink=kind, **labels)
    registry.gauge(
        "repro_sink_capacity",
        "Buffer capacity in records.",
        names).set(sink.capacity_events, sink=kind, **labels)


# -- tracing.formats / core.shard -----------------------------------------

def collect_trace_io(registry: MetricsRegistry,
                     labels: Optional[dict] = None) -> None:
    """Mirror the trace-I/O and sharding tallies into ``registry``.

    The sources are the plain process-wide counters kept by
    :mod:`repro.tracing.formats` (per-format loads/saves/bytes) and
    :mod:`repro.core.shard` (analyses, shard runs, pool fallbacks) —
    reading them never touches the I/O or extraction paths.
    """
    from ..core.shard import SHARD_COUNTERS
    from ..tracing.formats import IO_COUNTERS
    labels = labels if labels is not None else {}
    fmt_names = tuple(labels) + ("format",)
    loads = registry.counter(
        "repro_trace_loads_total",
        "Traces loaded through the format registry "
        "(open_trace / trace_from_bytes).", fmt_names)
    saves = registry.counter(
        "repro_trace_saves_total",
        "Traces written through the format registry "
        "(write_trace / trace_to_bytes).", fmt_names)
    bytes_read = registry.counter(
        "repro_trace_bytes_read_total",
        "Serialised trace bytes read, per format.", fmt_names)
    bytes_written = registry.counter(
        "repro_trace_bytes_written_total",
        "Serialised trace bytes written, per format.", fmt_names)
    for fmt, tallies in IO_COUNTERS.items():
        loads.set_total(tallies["loads"], format=fmt, **labels)
        saves.set_total(tallies["saves"], format=fmt, **labels)
        bytes_read.set_total(tallies["bytes_read"], format=fmt, **labels)
        bytes_written.set_total(tallies["bytes_written"], format=fmt,
                                **labels)
    names = tuple(labels)
    registry.counter(
        "repro_shard_analyses_total",
        "Sharded analysis batteries rendered (analyze --jobs N).",
        names).set_total(SHARD_COUNTERS["analyses"], **labels)
    registry.counter(
        "repro_shard_runs_total",
        "Shard-wise episode extractions performed.",
        names).set_total(SHARD_COUNTERS["shard_runs"], **labels)
    registry.counter(
        "repro_shard_shards_total",
        "Shards planned across all extractions.",
        names).set_total(SHARD_COUNTERS["shards"], **labels)
    registry.counter(
        "repro_shard_pool_fallbacks_total",
        "Extractions that fell back to in-process execution after the "
        "worker pool failed.",
        names).set_total(SHARD_COUNTERS["pool_fallbacks"], **labels)


# -- study.sec51 ----------------------------------------------------------

def collect_sec51(result, *, registry: Optional[MetricsRegistry] = None,
                  labels: Optional[dict] = None) -> MetricsSnapshot:
    """Mirror a Section 5.1 grid into ``registry`` and snapshot it.

    ``result`` is a :class:`repro.study.sec51.Sec51Result`; every cell
    becomes one series per instrument, labelled
    ``backend``/``condition``/``policy`` (plus any caller ``labels``).
    Like the rest of this module, collection only reads the finished
    result — ``timerstudy sec51 --metrics`` output is byte-identical
    to a metrics-off run.
    """
    registry = registry if registry is not None else MetricsRegistry()
    labels = labels if labels is not None else {}
    names = tuple(labels) + ("backend", "condition", "policy")
    waits = registry.counter(
        "repro_sec51_waits_total",
        "Request waits replayed through the cell (post-warm-up).",
        names)
    failures = registry.counter(
        "repro_sec51_failures_total",
        "Genuine failures (the reply never arriving).", names)
    spurious_total = registry.counter(
        "repro_sec51_false_timeouts_total",
        "Spurious timeouts: the policy fired although the reply was "
        "on its way.", names)
    wakeups = registry.counter(
        "repro_sec51_wakeups_total",
        "Timer expirations (failure detections + spurious wakeups).",
        names)
    relearns = registry.counter(
        "repro_sec51_relearns_total",
        "Level-shift relearns performed by the adaptive estimator.",
        names)
    spurious_rate = registry.gauge(
        "repro_sec51_spurious_rate",
        "Spurious timeouts per successful wait.", names)
    detection = registry.gauge(
        "repro_sec51_detection_seconds",
        "Failure-detection latency at the labelled quantile.",
        names + ("quantile",))
    per_conn = registry.gauge(
        "repro_sec51_wakeups_per_connection",
        "Timer wakeups amortised over the population's connections.",
        names)
    connections = registry.gauge(
        "repro_sec51_connections",
        "Connections in the replayed request population.", names)
    timeout = registry.gauge(
        "repro_sec51_timeout_seconds",
        "The timeout the policy was handing out at stream end.", names)
    for cell in result.grid():
        series = {"backend": cell.backend, "condition": cell.condition,
                  "policy": cell.policy}
        series.update(labels)
        waits.set_total(cell.waits, **series)
        failures.set_total(cell.failures, **series)
        spurious_total.set_total(cell.false_timeouts, **series)
        wakeups.set_total(cell.wakeups, **series)
        relearns.set_total(cell.relearned, **series)
        spurious_rate.set(cell.spurious_rate, **series)
        detection.set(cell.detection_p50, quantile="p50", **series)
        detection.set(cell.detection_p99, quantile="p99", **series)
        detection.set(cell.detection_max, quantile="max", **series)
        per_conn.set(cell.wakeups_per_connection, **series)
        connections.set(cell.connections, **series)
        timeout.set(cell.timeout_last, **series)
    return registry.snapshot()


# -- core.streaming -------------------------------------------------------

def collect_streaming(suite, registry: MetricsRegistry,
                      labels: dict) -> None:
    names = tuple(labels)
    registry.counter(
        "repro_streaming_events_total",
        "Events folded through the streaming reducers.",
        names).set_total(suite.n_events, **labels)
    registry.gauge(
        "repro_streaming_state_entries",
        "Live aggregation state (pending timers + buffered sweep "
        "instants + open episodes) at collection time.",
        names).set(0 if suite.finished else suite.state_size(), **labels)
    registry.gauge(
        "repro_streaming_state_peak",
        "Peak aggregation state — the O(active timers) bound.",
        names).set(suite.peak_state, **labels)
    registry.counter(
        "repro_streaming_groups_total",
        "Timer groups (addresses or (site, pid) clusters) created.",
        names).set_total(suite.groups_routed, **labels)
    registry.counter(
        "repro_streaming_episodes_total",
        "Completed episodes routed to subscribers.",
        names).set_total(suite.episodes_routed, **labels)
    registry.counter(
        "repro_streaming_late_waits_total",
        "Interval endpoints behind the committed watermark (must stay "
        "0 for the streamed concurrency to be exact).",
        names).set_total(suite.late_waits, **labels)
