"""Metrics primitives: Counter/Gauge/Histogram families, a registry,
and immutable snapshots.

The paper's study *is* an observability exercise — relayfs counters on
Linux, custom ETW events on Vista, ``/proc/timer_stats`` — yet until
this module the simulator's own internals (drop counts, wheel
cascades, coalescing hits, power transitions) were scattered ad-hoc
attributes.  ``repro.obs`` gathers them behind one Prometheus-shaped
surface:

* instruments are **families**: one name + label names, many labelled
  series (``counter.inc(1, cpu="0")``),
* a :class:`MetricsRegistry` owns families and freezes them into a
  :class:`MetricsSnapshot` — plain immutable data that pickles across
  the study pipeline's process boundary,
* a disabled registry hands out shared no-op instruments, so
  instrumented code pays one attribute call and nothing else
  (zero-cost-when-disabled).

Determinism: simulated quantities (event counts, cascades, drops,
energy) are identical across runs of the same seed; wall-clock derived
series are registered with ``volatile=True`` and are *excluded from
snapshot equality*, so two runs of one workload compare equal while
still reporting their real wall time.  The determinism sweep test
pins this.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence, Tuple

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "MetricsSnapshot", "NULL_REGISTRY", "Sample",
]

#: Default histogram buckets: log-ish spread over nanosecond timer
#: values (1 us .. 100 s), the domain every layer here observes.
DEFAULT_BUCKETS = (
    1_000, 10_000, 100_000, 1_000_000, 10_000_000, 100_000_000,
    1_000_000_000, 10_000_000_000, 100_000_000_000,
)


class Instrument:
    """One metric family: a name, fixed label names, labelled series."""

    kind = "untyped"

    __slots__ = ("name", "help", "label_names", "volatile", "_series")

    def __init__(self, name: str, help: str = "",
                 label_names: Sequence[str] = (),
                 volatile: bool = False):
        _check_name(name)
        self.name = name
        self.help = help
        self.label_names = tuple(label_names)
        self.volatile = volatile
        #: label-values tuple -> series value (insertion ordered).
        self._series: dict = {}

    def _key(self, labels: dict) -> tuple:
        if len(labels) != len(self.label_names):
            raise ValueError(
                f"{self.name}: expected labels {self.label_names}, "
                f"got {tuple(sorted(labels))}")
        try:
            return tuple(str(labels[name]) for name in self.label_names)
        except KeyError as missing:
            raise ValueError(f"{self.name}: missing label {missing}; "
                             f"expected {self.label_names}") from None

    def value(self, **labels):
        """Current value of one labelled series (0 if never touched)."""
        return self._series.get(self._key(labels), 0)

    def series(self) -> Iterable[tuple[tuple, object]]:
        return self._series.items()

    def __repr__(self) -> str:
        return (f"<{type(self).__name__} {self.name} "
                f"labels={self.label_names} series={len(self._series)}>")


class Counter(Instrument):
    """Monotonically increasing count (events dispatched, drops, ...)."""

    kind = "counter"
    __slots__ = ()

    def inc(self, amount: float = 1, **labels) -> None:
        if amount < 0:
            raise ValueError(f"{self.name}: counters only go up "
                             f"(inc {amount})")
        key = self._key(labels)
        self._series[key] = self._series.get(key, 0) + amount

    def set_total(self, total: float, **labels) -> None:
        """Overwrite the cumulative total — the pull-collection path,
        where an existing subsystem counter (``engine.dispatched``,
        ``wheel.cascades``) is mirrored at snapshot time."""
        if total < 0:
            raise ValueError(f"{self.name}: negative total {total}")
        self._series[self._key(labels)] = total


class Gauge(Instrument):
    """A value that can go either way (queue depth, occupancy)."""

    kind = "gauge"
    __slots__ = ()

    def set(self, value: float, **labels) -> None:
        self._series[self._key(labels)] = value

    def inc(self, amount: float = 1, **labels) -> None:
        key = self._key(labels)
        self._series[key] = self._series.get(key, 0) + amount

    def dec(self, amount: float = 1, **labels) -> None:
        self.inc(-amount, **labels)


class Histogram(Instrument):
    """Cumulative-bucket distribution (Prometheus histogram schema)."""

    kind = "histogram"
    __slots__ = ("buckets",)

    def __init__(self, name: str, help: str = "",
                 label_names: Sequence[str] = (),
                 buckets: Sequence[float] = DEFAULT_BUCKETS,
                 volatile: bool = False):
        super().__init__(name, help, label_names, volatile)
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError(f"{name}: buckets must be sorted and "
                             "non-empty")
        self.buckets = tuple(buckets)

    def observe(self, value: float, **labels) -> None:
        key = self._key(labels)
        cell = self._series.get(key)
        if cell is None:
            # [per-bucket counts..., +Inf count, sum, n]
            cell = self._series[key] = [0] * (len(self.buckets) + 1) \
                + [0.0, 0]
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                cell[i] += 1
                break
        else:
            cell[len(self.buckets)] += 1
        cell[-2] += value
        cell[-1] += 1

    def value(self, **labels):
        """(cumulative (le, count) pairs, sum, count) for one series."""
        cell = self._series.get(self._key(labels))
        if cell is None:
            return ((), 0.0, 0)
        return _freeze_histogram(self.buckets, cell)


def _freeze_histogram(buckets: tuple, cell: list) -> tuple:
    cumulative = []
    running = 0
    for bound, count in zip(buckets, cell):
        running += count
        cumulative.append((bound, running))
    running += cell[len(buckets)]
    cumulative.append((float("inf"), running))
    return (tuple(cumulative), cell[-2], cell[-1])


def _check_name(name: str) -> None:
    ok = name and (name[0].isalpha() or name[0] == "_") and all(
        ch.isalnum() or ch in "_:" for ch in name)
    if not ok:
        raise ValueError(f"invalid metric name {name!r}")


class _NullInstrument:
    """Shared no-op standing in for every instrument kind when a
    registry is disabled: the instrumented call sites stay branch-free
    and allocation-free."""

    kind = "null"
    name = help = ""
    label_names = ()
    volatile = False
    buckets = ()

    __slots__ = ()

    def inc(self, amount: float = 1, **labels) -> None:
        pass

    def dec(self, amount: float = 1, **labels) -> None:
        pass

    def set(self, value: float, **labels) -> None:
        pass

    def set_total(self, total: float, **labels) -> None:
        pass

    def observe(self, value: float, **labels) -> None:
        pass

    def value(self, **labels):
        return 0

    def series(self):
        return ()


NULL_INSTRUMENT = _NullInstrument()


@dataclass(frozen=True)
class Sample:
    """One series frozen out of a registry.

    ``value`` is a number for counters/gauges and the
    ``((le, cumcount), ..., sum, n)`` triple for histograms.
    """

    name: str
    kind: str
    help: str
    labels: Tuple[Tuple[str, str], ...]
    value: object
    volatile: bool = False


class MetricsSnapshot:
    """Immutable, picklable view of a registry at one instant.

    Equality compares only non-volatile samples — wall-clock series
    (marked ``volatile=True`` at registration) differ between two runs
    of the same seed and would make determinism assertions impossible;
    :meth:`identical` compares everything.
    """

    __slots__ = ("samples",)

    def __init__(self, samples: Iterable[Sample]):
        object.__setattr__(self, "samples", tuple(samples))

    def __setattr__(self, name, value):
        raise AttributeError("MetricsSnapshot is immutable")

    def __reduce__(self):
        # Re-enter __init__ on unpickle: the default slot-state path
        # would trip over the immutability guard above.
        return (MetricsSnapshot, (self.samples,))

    # -- access ----------------------------------------------------------

    def stable(self) -> "MetricsSnapshot":
        """The snapshot minus volatile (wall-clock) samples."""
        return MetricsSnapshot(s for s in self.samples if not s.volatile)

    def names(self) -> tuple:
        seen = dict.fromkeys(s.name for s in self.samples)
        return tuple(seen)

    def get(self, name: str, **labels):
        """Value of one series; raises KeyError if absent."""
        want = tuple(sorted((k, str(v)) for k, v in labels.items()))
        for sample in self.samples:
            if sample.name == name \
                    and tuple(sorted(sample.labels)) == want:
                return sample.value
        raise KeyError(f"no sample {name!r} with labels {labels}")

    def filter(self, name: str) -> list:
        return [s for s in self.samples if s.name == name]

    # -- comparison ------------------------------------------------------

    def __eq__(self, other) -> bool:
        if not isinstance(other, MetricsSnapshot):
            return NotImplemented
        return self.stable().samples == other.stable().samples

    def __hash__(self) -> int:
        return hash(self.stable().samples)

    def identical(self, other: "MetricsSnapshot") -> bool:
        """Strict comparison including volatile samples."""
        return self.samples == other.samples

    # -- composition -----------------------------------------------------

    @classmethod
    def merge(cls, snapshots: Iterable["MetricsSnapshot"]
              ) -> "MetricsSnapshot":
        """Concatenate snapshots (e.g. one per study job).  Later
        samples win on identical (name, labels) identity."""
        merged: dict = {}
        for snapshot in snapshots:
            for sample in snapshot.samples:
                merged[(sample.name, sample.labels)] = sample
        return cls(merged.values())

    def render(self) -> str:
        """Prometheus text exposition (see :mod:`repro.obs.export`)."""
        from .export import render_prometheus
        return render_prometheus(self)

    # -- machine-readable form -------------------------------------------

    def to_json(self, *, indent: Optional[int] = None) -> str:
        """Serialise the snapshot as JSON (strict: non-finite numbers
        become the strings ``"NaN"``/``"+Inf"``/``"-Inf"``, histogram
        bucket bounds likewise), so snapshots can be consumed without
        scraping the text exposition.  :meth:`from_json` inverts it
        exactly (``from_json(s.to_json()).identical(s)``)."""
        import json
        return json.dumps({"samples": [
            {"name": s.name, "kind": s.kind, "help": s.help,
             "labels": dict(s.labels), "value": _jsonable(s.value),
             "volatile": s.volatile}
            for s in self.samples]}, indent=indent, allow_nan=False)

    @classmethod
    def from_json(cls, text: str) -> "MetricsSnapshot":
        """Rebuild a snapshot produced by :meth:`to_json`."""
        import json
        doc = json.loads(text)
        return cls(Sample(
            entry["name"], entry["kind"], entry["help"],
            tuple((name, value)
                  for name, value in entry["labels"].items()),
            _unjsonable(entry["value"], entry["kind"]),
            entry["volatile"]) for entry in doc["samples"])

    def __len__(self) -> int:
        return len(self.samples)

    def __repr__(self) -> str:
        return f"<MetricsSnapshot {len(self.samples)} samples>"


def _jsonable(value):
    """Strict-JSON form of a sample value (numbers stay numbers,
    non-finite floats become marker strings, histogram triples become
    an object)."""
    if isinstance(value, tuple):        # histogram triple
        cumulative, total, count = value
        return {"buckets": [[_jsonable(bound), running]
                            for bound, running in cumulative],
                "sum": _jsonable(total), "count": count}
    if isinstance(value, float):
        if value != value:
            return "NaN"
        if value == float("inf"):
            return "+Inf"
        if value == float("-inf"):
            return "-Inf"
    return value


_NONFINITE = {"NaN": float("nan"), "+Inf": float("inf"),
              "-Inf": float("-inf")}


def _unnumber(value):
    return _NONFINITE[value] if isinstance(value, str) else value


def _unjsonable(value, kind: str):
    if kind == "histogram":
        return (tuple((_unnumber(bound), running)
                      for bound, running in value["buckets"]),
                _unnumber(value["sum"]), value["count"])
    return _unnumber(value)


class MetricsRegistry:
    """Instrument factory + holder.

    ``enabled=False`` turns every factory method into a return of the
    shared :data:`NULL_INSTRUMENT`: call sites keep working, record
    nothing, and cost one dict lookup at registration time only.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._instruments: dict[str, Instrument] = {}

    # -- factories -------------------------------------------------------

    def counter(self, name: str, help: str = "",
                labels: Sequence[str] = (),
                volatile: bool = False) -> Counter:
        return self._get_or_create(Counter, name, help, labels,
                                   volatile=volatile)

    def gauge(self, name: str, help: str = "",
              labels: Sequence[str] = (),
              volatile: bool = False) -> Gauge:
        return self._get_or_create(Gauge, name, help, labels,
                                   volatile=volatile)

    def histogram(self, name: str, help: str = "",
                  labels: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_BUCKETS,
                  volatile: bool = False) -> Histogram:
        return self._get_or_create(Histogram, name, help, labels,
                                   buckets=buckets, volatile=volatile)

    def _get_or_create(self, cls, name, help, labels, **kwargs):
        if not self.enabled:
            return NULL_INSTRUMENT
        existing = self._instruments.get(name)
        if existing is not None:
            if type(existing) is not cls \
                    or existing.label_names != tuple(labels):
                raise ValueError(
                    f"metric {name!r} re-registered as {cls.kind} with "
                    f"labels {tuple(labels)}; existing is "
                    f"{existing.kind} with {existing.label_names}")
            return existing
        instrument = cls(name, help, labels, **kwargs)
        self._instruments[name] = instrument
        return instrument

    # -- access ----------------------------------------------------------

    def get(self, name: str) -> Optional[Instrument]:
        return self._instruments.get(name)

    def instruments(self) -> Iterable[Instrument]:
        return self._instruments.values()

    def snapshot(self) -> MetricsSnapshot:
        samples = []
        for instrument in self._instruments.values():
            for key, value in instrument.series():
                if instrument.kind == "histogram":
                    value = _freeze_histogram(instrument.buckets, value)
                labels = tuple(zip(instrument.label_names, key))
                samples.append(Sample(
                    instrument.name, instrument.kind, instrument.help,
                    labels, value, instrument.volatile))
        return MetricsSnapshot(samples)

    def render(self) -> str:
        return self.snapshot().render()


#: Shared disabled registry: hand this to instrumented code to switch
#: every metric off at zero marginal cost.
NULL_REGISTRY = MetricsRegistry(enabled=False)
