"""repro.obs — simulator-wide observability.

Metrics registry (:mod:`~repro.obs.metrics`), Prometheus text exporter
(:mod:`~repro.obs.export`), pull-collectors for every simulator layer
(:mod:`~repro.obs.collect`) and the virtual-time profiler
(:mod:`~repro.obs.profiler`).
"""

from .collect import collect_kernel, collect_run, collect_sec51, \
    collect_sink, collect_streaming, collect_trace_io
from .delta import derive_rates, snapshot_delta
from .export import render_prometheus
from .metrics import (
    Counter, Gauge, Histogram, MetricsRegistry, MetricsSnapshot,
    NULL_REGISTRY, Sample,
)
from .profiler import VirtualTimeProfiler, current_profiler, profile, \
    subsystem_of

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "MetricsSnapshot", "NULL_REGISTRY", "Sample",
    "VirtualTimeProfiler", "collect_kernel", "collect_run",
    "collect_sec51", "collect_sink", "collect_streaming",
    "collect_trace_io",
    "current_profiler",
    "derive_rates", "profile", "render_prometheus", "snapshot_delta",
    "subsystem_of",
]
