"""Snapshot deltas and rate derivation — the between-scrapes algebra.

A long-running collection (the ``timerstudy serve`` daemon) takes one
:class:`~repro.obs.metrics.MetricsSnapshot` per cycle; what a live
telemetry consumer wants from two consecutive snapshots is

* the **delta** — how much each counter moved in the interval (gauges
  pass through, histograms subtract bucket-wise), and
* the **rate** — counter deltas divided by the wall seconds between
  the two scrapes, published as volatile gauges named
  ``<counter>:rate`` (the ``:`` namespace is the Prometheus convention
  for derived series).

Counter resets (a series restarting from zero, e.g. after a collector
was rebuilt) are clamped the way Prometheus's ``rate()`` clamps them:
a negative delta is treated as the new cumulative value.
"""

from __future__ import annotations

from typing import Iterable

from .metrics import MetricsSnapshot, Sample

__all__ = ["derive_rates", "snapshot_delta"]


def _by_identity(snapshot: MetricsSnapshot) -> dict:
    return {(s.name, s.labels): s for s in snapshot.samples}


def _counter_delta(prev, curr):
    delta = curr - prev
    return curr if delta < 0 else delta     # reset: restart from zero


def _histogram_delta(prev, curr):
    prev_cum, prev_sum, prev_n = prev
    curr_cum, curr_sum, curr_n = curr
    if curr_n < prev_n or len(prev_cum) != len(curr_cum):
        return curr                          # reset or reshape
    cumulative = tuple((bound, running - prev_running)
                       for (bound, running), (_, prev_running)
                       in zip(curr_cum, prev_cum))
    return (cumulative, curr_sum - prev_sum, curr_n - prev_n)


def snapshot_delta(prev: MetricsSnapshot,
                   curr: MetricsSnapshot) -> MetricsSnapshot:
    """The movement between two snapshots of the same registry.

    Counters and histograms are differenced against ``prev`` (series
    absent from ``prev`` keep their current value — they are new, so
    their whole history happened in this interval); gauges report their
    current value unchanged.
    """
    previous = _by_identity(prev)
    samples = []
    for sample in curr.samples:
        before = previous.get((sample.name, sample.labels))
        value = sample.value
        if before is not None and sample.kind == "counter":
            value = _counter_delta(before.value, value)
        elif before is not None and sample.kind == "histogram":
            value = _histogram_delta(before.value, value)
        samples.append(Sample(sample.name, sample.kind, sample.help,
                              sample.labels, value, sample.volatile))
    return MetricsSnapshot(samples)


def derive_rates(prev: MetricsSnapshot, curr: MetricsSnapshot,
                 seconds: float, *,
                 suffix: str = ":rate") -> MetricsSnapshot:
    """Per-second rates for every counter present in both snapshots.

    Returns volatile gauges (wall-clock derived, so excluded from
    snapshot equality) named ``<counter><suffix>``.  ``seconds`` must
    be positive; histograms and gauges are skipped.
    """
    if seconds <= 0:
        raise ValueError(f"non-positive scrape interval {seconds}")
    previous = _by_identity(prev)
    samples: Iterable[Sample] = (
        Sample(sample.name + suffix, "gauge",
               f"Per-second rate of {sample.name} over the last "
               "collection interval.",
               sample.labels,
               _counter_delta(previous[(sample.name,
                                        sample.labels)].value,
                              sample.value) / seconds,
               volatile=True)
        for sample in curr.samples
        if sample.kind == "counter"
        and (sample.name, sample.labels) in previous)
    return MetricsSnapshot(samples)
