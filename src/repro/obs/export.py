"""Prometheus text exposition for :class:`~repro.obs.metrics.MetricsSnapshot`.

Produces the `text-based exposition format
<https://prometheus.io/docs/instrumenting/exposition_formats/>`_ —
``# HELP`` / ``# TYPE`` headers followed by one line per labelled
series, histograms expanded into ``_bucket``/``_sum``/``_count``.  The
output is deterministic for a deterministic snapshot (family order is
registration order, series order is first-touch order), so the CI
metrics smoke job can grep it and the determinism sweep can diff it.
"""

from __future__ import annotations

from typing import Union

from .metrics import MetricsRegistry, MetricsSnapshot, Sample

__all__ = ["render_prometheus"]


def _escape(value: str) -> str:
    return value.replace("\\", r"\\").replace("\n", r"\n") \
                .replace('"', r'\"')


def _labels(pairs) -> str:
    if not pairs:
        return ""
    body = ",".join(f'{name}="{_escape(value)}"'
                    for name, value in pairs)
    return "{" + body + "}"


def _number(value) -> str:
    if value != value:                  # NaN is the only self-unequal value
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)


def _render_sample(out: list, sample: Sample) -> None:
    if sample.kind == "histogram":
        cumulative, total, count = sample.value
        for bound, running in cumulative:
            le = sample.labels + (("le", _number(bound)),)
            out.append(f"{sample.name}_bucket{_labels(le)} {running}")
        out.append(f"{sample.name}_sum{_labels(sample.labels)} "
                   f"{_number(total)}")
        out.append(f"{sample.name}_count{_labels(sample.labels)} "
                   f"{count}")
    else:
        out.append(f"{sample.name}{_labels(sample.labels)} "
                   f"{_number(sample.value)}")


def render_prometheus(source: Union[MetricsSnapshot, MetricsRegistry]
                      ) -> str:
    """Render a snapshot (or a registry, snapshotted here) as text."""
    snapshot = source.snapshot() if isinstance(source, MetricsRegistry) \
        else source
    out: list[str] = []
    seen_header = set()
    for sample in snapshot.samples:
        if sample.name not in seen_header:
            seen_header.add(sample.name)
            if sample.help:
                out.append(f"# HELP {sample.name} {sample.help}")
            out.append(f"# TYPE {sample.name} {sample.kind}")
        _render_sample(out, sample)
    # The exposition spec requires the body to end with a newline —
    # even an empty registry renders a single terminating "\n".
    return "\n".join(out) + "\n"
