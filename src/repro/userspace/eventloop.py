"""A user-level timer multiplexer: the select-loop reactor.

"Linux systems typically have two multiplexing layers, one in the
kernel and one implemented as a select loop in the application, often
in a library such as libasync or Python's Twisted" (Section 2.1).
:class:`UserEventLoop` is that second layer: applications register any
number of user-level timers and event handlers; the loop keeps them in
its own priority queue and blocks in ``select`` with a timeout equal to
the time until the earliest user timer.

This reproduces the paper's central *instrumentation problem*
(Section 3): at the kernel boundary all of an application's timers
collapse onto one ``select`` timer whose value varies call to call —
"a low-level instrumentation point masks the distinction between a
single timer whose value varies and multiple timers that are being
coalesced".  The loop therefore supports its own *user-level*
instrumentation sink emitting the same record schema, so analyses can
be compared across the two layers (see
``examples/userspace_reactor.py``).
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Callable, Optional, Tuple

from ..linuxkern.syscalls import SyscallInterface, WakeReason
from ..sim.tasks import Task
from ..tracing.events import EventKind, TimerEvent


class UserTimer:
    """One user-level timer entry (a Twisted ``DelayedCall``)."""

    __slots__ = ("timer_id", "callback", "site", "due_ns", "interval_ns",
                 "armed", "_seq", "fired_count")

    def __init__(self, timer_id: int, callback: Callable[[], None],
                 site: Tuple[str, ...]):
        self.timer_id = timer_id
        self.callback = callback
        self.site = site
        self.due_ns = 0
        #: >0 for periodic timers: re-armed after each fire.
        self.interval_ns = 0
        self.armed = False
        self._seq = 0
        self.fired_count = 0


class UserEventLoop:
    """A reactor multiplexing user timers over one blocking select."""

    def __init__(self, machine, comm: str = "reactor", *,
                 task: Optional[Task] = None, user_sink=None):
        self.machine = machine
        self.syscalls: SyscallInterface = machine.syscalls
        self.task = task if task is not None \
            else machine.kernel.tasks.spawn(comm)
        #: Optional sink receiving user-layer TimerEvents (the
        #: instrumentation the paper wishes it had had).
        self.user_sink = user_sink
        self._queue: list[tuple[int, int, UserTimer]] = []
        self._seq = 0
        self._next_id = 0xA000_0000
        self._ready: deque[Callable[[], None]] = deque()
        self._call = None
        self.running = False
        #: Statistics.
        self.kernel_selects = 0
        self.user_fires = 0

    # -- user-level instrumentation ---------------------------------------

    def _emit(self, kind: EventKind, timer: UserTimer,
              timeout_ns: Optional[int] = None,
              expires_ns: Optional[int] = None) -> None:
        if self.user_sink is None:
            return
        self.user_sink.emit(TimerEvent(
            kind, self.machine.kernel.engine.now, timer.timer_id,
            self.task.pid, self.task.comm, "user", timer.site,
            timeout_ns, expires_ns))

    # -- timer API ----------------------------------------------------------

    def call_later(self, delay_ns: int, callback: Callable[[], None], *,
                   site: Tuple[str, ...] = ("reactor.call_later",)
                   ) -> UserTimer:
        """One-shot user timer after ``delay_ns``."""
        self._next_id += 0x10
        timer = UserTimer(self._next_id, callback, site)
        self._emit(EventKind.INIT, timer)
        self._arm(timer, delay_ns)
        return timer

    def call_periodic(self, interval_ns: int,
                      callback: Callable[[], None], *,
                      site: Tuple[str, ...] = ("reactor.looping_call",)
                      ) -> UserTimer:
        """Periodic user timer (Twisted's ``LoopingCall``)."""
        if interval_ns <= 0:
            raise ValueError("interval must be positive")
        timer = self.call_later(interval_ns, callback, site=site)
        timer.interval_ns = interval_ns
        return timer

    def reset(self, timer: UserTimer, delay_ns: int) -> None:
        """Re-arm an existing timer (``DelayedCall.reset``)."""
        self._arm(timer, delay_ns)

    def cancel(self, timer: UserTimer) -> bool:
        if not timer.armed:
            return False
        timer.armed = False
        self._emit(EventKind.CANCEL, timer, expires_ns=timer.due_ns)
        self._interrupt_select()
        return True

    def _arm(self, timer: UserTimer, delay_ns: int) -> None:
        now = self.machine.kernel.engine.now
        self._seq += 1
        timer.due_ns = now + delay_ns
        timer.armed = True
        timer._seq = self._seq
        heapq.heappush(self._queue, (timer.due_ns, self._seq, timer))
        self._emit(EventKind.SET, timer, timeout_ns=delay_ns,
                   expires_ns=timer.due_ns)
        self._interrupt_select()

    # -- event delivery -------------------------------------------------------

    def deliver(self, callback: Callable[[], None]) -> None:
        """An external event (fd readiness) for the loop to process."""
        self._ready.append(callback)
        if self._call is not None and not self._call.done:
            self._call.fd_ready()

    # -- the loop ---------------------------------------------------------------

    def start(self) -> None:
        if self.running:
            return
        self.running = True
        self._iterate()

    def stop(self) -> None:
        self.running = False
        if self._call is not None and not self._call.done:
            self._call.signal()

    def _peek(self) -> Optional[UserTimer]:
        queue = self._queue
        while queue:
            due, seq, timer = queue[0]
            if timer.armed and timer._seq == seq:
                return timer
            heapq.heappop(queue)
        return None

    def _iterate(self) -> None:
        if not self.running:
            return
        # Drain external events first.
        while self._ready:
            self._ready.popleft()()
        # Run every due user timer.
        now = self.machine.kernel.engine.now
        while True:
            timer = self._peek()
            if timer is None or timer.due_ns > now:
                break
            heapq.heappop(self._queue)
            timer.armed = False
            timer.fired_count += 1
            self.user_fires += 1
            self._emit(EventKind.EXPIRE, timer, expires_ns=timer.due_ns)
            if timer.interval_ns > 0:
                self._arm(timer, timer.interval_ns)
            timer.callback()
        # Block in select until the earliest user timer (or forever).
        timer = self._peek()
        timeout = None if timer is None \
            else max(0, timer.due_ns - self.machine.kernel.engine.now)
        self.kernel_selects += 1
        self._call = self.syscalls.select(self.task, timeout,
                                          self._select_returned)

    def _select_returned(self, reason: WakeReason,
                         _remaining: int) -> None:
        if reason == WakeReason.SIGNAL:
            return                     # stop() tore the loop down
        self._iterate()

    def _interrupt_select(self) -> None:
        """A timer change while blocked: wake the loop so it can
        recompute its select timeout (reactors use a wakeup pipe)."""
        if self.running and self._call is not None \
                and not self._call.done:
            self._call.fd_ready()
