"""User-space timer multiplexing (the paper's second layer).

Provides the select-loop reactor of Section 2.1 — the libasync/Twisted
style user-level timer queue multiplexed over one kernel ``select``
timeout — together with user-layer instrumentation so the paper's
analyses can be run above and below the syscall boundary.
"""

from .eventloop import UserEventLoop, UserTimer

__all__ = ["UserEventLoop", "UserTimer"]
