"""Registry lazy-flush — the paper's *deferred operation* pattern.

Section 4.1.1 identifies a fifth, Vista-specific usage pattern: "the
timer is repeatedly deferred by a constant amount each time as with a
watchdog, but after a few iterations expires, before being restarted
again.  This mode is used for a deferred operation, for example lazy
closing of handles to Vista registry contents."  The expiry triggers an
action that should happen once the activity has been idle for a while.
"""

from __future__ import annotations

from ..sim.clock import seconds
from ..sim.rng import RngStream
from .ktimer import VistaKernel

SITE_LAZY_FLUSH = ("nt!CmpLazyFlushWorker", "nt!CmpArmDelayedCloseTimer",
                   "nt!KeSetTimer")

LAZY_CLOSE_DELAY_NS = seconds(5)


class RegistryLazyCloser:
    """Defers a flush while registry handles are being touched."""

    def __init__(self, kernel: VistaKernel, rng: RngStream, *,
                 delay_ns: int = LAZY_CLOSE_DELAY_NS,
                 touch_mean_ns: int = seconds(2),
                 burst_length: int = 4):
        self.kernel = kernel
        self.rng = rng
        self.delay_ns = delay_ns
        #: Mean gap between registry touches during a burst.
        self.touch_mean_ns = touch_mean_ns
        #: Average touches per activity burst before going idle.
        self.burst_length = burst_length
        self.flushes = 0
        self.system = kernel.tasks.spawn("System") \
            if not kernel.tasks.by_comm("System") \
            else kernel.tasks.by_comm("System")[0]
        self.timer = kernel.alloc_ktimer(site=SITE_LAZY_FLUSH,
                                         owner=self.system,
                                         domain="kernel", trace_init=True)
        self.timer.dpc = self._flush
        self._burst_remaining = 0

    def start(self) -> None:
        self._schedule_touch()

    def touch(self) -> None:
        """A registry handle was used: defer the flush."""
        self.kernel.set_timer(self.timer, self.delay_ns)

    def _schedule_touch(self) -> None:
        if self._burst_remaining == 0:
            # Idle gap long enough for the timer to expire, then a new
            # burst of registry activity begins.
            self._burst_remaining = 1 + self.rng.randrange(
                2 * self.burst_length)
            gap = int(self.delay_ns * (1.2 + self.rng.random()))
        else:
            gap = int(self.rng.exponential(self.touch_mean_ns))
        self.kernel.engine.call_after(gap, self._touch_event)

    def _touch_event(self) -> None:
        self.touch()
        self._burst_remaining -= 1
        self._schedule_touch()

    def _flush(self, _timer) -> None:
        self.flushes += 1
