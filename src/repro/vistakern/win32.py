"""Win32 timer surfaces: waitable timers and GUI ``SetTimer`` messages.

Two very different front ends over the same kernel facility
(Section 2.2):

* ``{Create,Set,Cancel}WaitableTimer`` — the NT API re-exported largely
  unmodified.
* ``SetTimer``/``KillTimer`` — the event-driven GUI form: expiries are
  delivered as APCs that insert ``WM_TIMER`` messages into the
  application's message queue, serviced by the GUI thread's dispatch
  loop.  Delivery latency therefore includes both clock-interrupt
  granularity *and* message-queue service delay, which is why GUI timer
  expiry times scatter so widely in the paper's Vista duration plots.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional

from ..sim.clock import MILLISECOND
from ..sim.tasks import Task
from .ktimer import VistaKernel
from .ntapi import NtTimerApi

SITE_WAITABLE = ("kernel32!SetWaitableTimer", "ntdll!NtSetTimer",
                 "nt!KeSetTimer")
SITE_SETTIMER = ("user32!SetTimer", "win32k!StartTimer", "nt!KeSetTimer")

#: USER timers are clamped to this floor (USER_TIMER_MINIMUM).
USER_TIMER_MINIMUM_NS = 10 * MILLISECOND

WM_TIMER = 0x0113


class WaitableTimers:
    """The waitable-timer wrapper over the NT API."""

    def __init__(self, nt: NtTimerApi):
        self.nt = nt

    def create(self, task: Task, *, manual_reset: bool = True) -> int:
        return self.nt.nt_create_timer(task, manual_reset=manual_reset,
                                       site=SITE_WAITABLE)

    def set(self, handle: int, due_ns: int, *, period_ns: int = 0,
            completion: Optional[Callable[[], None]] = None) -> None:
        self.nt.nt_set_timer(handle, due_ns, period_ns=period_ns,
                             apc_routine=completion)

    def cancel(self, handle: int) -> bool:
        return self.nt.nt_cancel_timer(handle)


class MessageQueue:
    """A GUI thread's message queue plus its USER timers.

    One kernel timer per USER timer entry (win32k keeps an entry in its
    timer table backed by a KTIMER).  On expiry a ``WM_TIMER`` message
    is queued; the application pumps it with :meth:`get_message`
    semantics modelled by a drain callback.
    """

    def __init__(self, kernel: VistaKernel, task: Task):
        self.kernel = kernel
        self.task = task
        self.messages: deque[tuple[int, int]] = deque()
        self._timers: dict[int, dict] = {}
        self._pump_callback: Optional[Callable[[int, int], None]] = None
        #: Mean extra delay before the pump services a queued message.
        self.pump_latency_ns = 2 * MILLISECOND

    def set_timer(self, timer_id: int, period_ns: int,
                  callback: Callable[[int], None]) -> None:
        """``SetTimer(hwnd, id, elapse, NULL)``: periodic WM_TIMER."""
        period_ns = max(period_ns, USER_TIMER_MINIMUM_NS)
        entry = self._timers.get(timer_id)
        if entry is None:
            ktimer = self.kernel.alloc_ktimer(site=SITE_SETTIMER,
                                              owner=self.task,
                                              domain="user",
                                              trace_init=True)
            entry = {"ktimer": ktimer}
            self._timers[timer_id] = entry
        entry["period_ns"] = period_ns
        entry["callback"] = callback
        entry["ktimer"].dpc = lambda _kt, tid=timer_id: self._expired(tid)
        self.kernel.set_timer(entry["ktimer"], period_ns)

    def kill_timer(self, timer_id: int) -> bool:
        """``KillTimer``."""
        entry = self._timers.pop(timer_id, None)
        if entry is None:
            return False
        self.kernel.cancel_timer(entry["ktimer"])
        self.kernel.free_ktimer(entry["ktimer"])
        return True

    def _expired(self, timer_id: int) -> None:
        entry = self._timers.get(timer_id)
        if entry is None:
            return
        self.messages.append((WM_TIMER, timer_id))
        # Message pump services the queue shortly afterwards.
        self.kernel.engine.call_after(self.pump_latency_ns, self._pump)
        # win32k re-arms the USER timer for the next period.
        self.kernel.set_timer(entry["ktimer"], entry["period_ns"])

    def _pump(self) -> None:
        while self.messages:
            msg, timer_id = self.messages.popleft()
            entry = self._timers.get(timer_id)
            if entry is not None and msg == WM_TIMER:
                entry["callback"](timer_id)
