"""The NT native timer API: ``NtCreateTimer``/``NtSetTimer``/``NtCancelTimer``.

Exports kernel timers to user space via HANDLEs in the kernel handle
table, delivering expiry through asynchronous procedure calls (APCs,
the NT analogue of Unix signals) instead of DPCs (Section 2.2).  The
Win32 waitable-timer API is a thin wrapper over this layer.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

from ..sim.tasks import Task
from .ktimer import VistaKernel

SITE_NTSET = ("ntdll!NtSetTimer", "nt!NtSetTimer", "nt!KeSetTimer")


class NtTimer:
    """A named kernel timer object reachable through a handle."""

    def __init__(self, nt: "NtTimerApi", handle: int, task: Task,
                 site: Tuple[str, ...], manual_reset: bool):
        self.nt = nt
        self.handle = handle
        self.task = task
        self.manual_reset = manual_reset
        self.ktimer = nt.kernel.alloc_ktimer(site=site, owner=task,
                                             domain="user", trace_init=True)
        self.apc_routine: Optional[Callable[[], None]] = None
        self.signaled = False


class NtTimerApi:
    """Handle-table front end to KTIMERs with APC delivery."""

    def __init__(self, kernel: VistaKernel):
        self.kernel = kernel
        self._next_handle = 0x4
        self._handles: dict[int, NtTimer] = {}

    def nt_create_timer(self, task: Task, *, manual_reset: bool = True,
                        site: Tuple[str, ...] = SITE_NTSET) -> int:
        """Returns a new HANDLE."""
        handle = self._next_handle
        self._next_handle += 4
        self._handles[handle] = NtTimer(self, handle, task,
                                        site, manual_reset)
        return handle

    def nt_set_timer(self, handle: int, due_ns: int, *,
                     absolute: bool = False, period_ns: int = 0,
                     apc_routine: Optional[Callable[[], None]] = None
                     ) -> None:
        """Arm the timer; ``apc_routine`` runs in the owning thread."""
        timer = self._handles[handle]
        timer.apc_routine = apc_routine
        timer.signaled = False
        timer.ktimer.on_signal = lambda _kt: self._deliver(timer)
        self.kernel.set_timer(timer.ktimer, due_ns, absolute=absolute,
                              period_ns=period_ns)

    def nt_cancel_timer(self, handle: int) -> bool:
        timer = self._handles[handle]
        return self.kernel.cancel_timer(timer.ktimer)

    def nt_close(self, handle: int) -> None:
        timer = self._handles.pop(handle)
        self.kernel.free_ktimer(timer.ktimer)

    def _deliver(self, timer: NtTimer) -> None:
        timer.signaled = True
        if timer.apc_routine is not None:
            # APC delivery waits for the thread to become alertable; the
            # sub-millisecond queueing delay is ignored here.
            timer.apc_routine()
