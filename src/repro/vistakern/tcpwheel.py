"""Per-CPU timing wheels for TCP timeouts — the Vista re-architecture.

"The Windows Vista TCP/IP stack was recently completely re-architected
to use per-CPU timing wheels for TCP-related timeouts" because the
generic KTIMER path's per-timer allocation, locking and ring insertion
showed up as CPU overhead under network load (Section 1, citing soft
timers).  This module provides that facility:

* :class:`TcpTimingWheel` — a single fixed-slot timing wheel with O(1)
  arm/cancel, advanced from the (existing) periodic clock interrupt, so
  no extra hardware programming is needed;
* :class:`PerCpuTcpTimers` — one wheel per CPU; a connection's timers
  live on the CPU that owns the connection, eliminating cross-CPU
  locking on the hot path.

``benchmarks/bench_tcpwheel.py`` measures operation cost against the
generic KTIMER facility under a webserver-like arm/cancel storm.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..sim.clock import MILLISECOND
from .ktimer import VistaKernel

#: TCP ticks at 100 ms granularity (coarse is fine: RTO floors at
#: hundreds of ms and keepalives at hours).
TCP_TICK_NS = 100 * MILLISECOND
WHEEL_SLOTS = 512          # covers 51.2 s per rotation


class WheelTimeout:
    """One pending TCP timeout (embedded in the connection block)."""

    __slots__ = ("callback", "slot", "rotations", "armed", "generation")

    def __init__(self) -> None:
        self.callback: Optional[Callable[[], None]] = None
        self.slot = -1
        self.rotations = 0
        self.armed = False
        #: Bumped on every arm so stale bucket entries from a previous
        #: arming (lazy cancellation) are recognised and swept.
        self.generation = 0


class TcpTimingWheel:
    """Fixed-granularity timing wheel advanced by the clock interrupt."""

    def __init__(self, kernel: VistaKernel, *, cpu: int = 0):
        self.kernel = kernel
        self.cpu = cpu
        self.slots: list[list[tuple[WheelTimeout, int]]] = \
            [[] for _ in range(WHEEL_SLOTS)]
        self.hand = 0
        self._accumulated_ns = 0
        self._last_advance_ns = kernel.engine.now
        self.arms = 0
        self.cancels = 0
        self.fires = 0
        #: Lock acquisitions, the contention proxy the per-CPU design
        #: eliminates (one uncontended lock per operation here).
        self.lock_ops = 0

    # -- client API ---------------------------------------------------------

    def arm(self, timeout: WheelTimeout, delay_ns: int,
            callback: Callable[[], None]) -> None:
        """O(1): drop into the slot ``delay`` ticks ahead."""
        if timeout.armed:
            self.cancel(timeout)
        self.arms += 1
        self.lock_ops += 1
        ticks = max(1, -(-delay_ns // TCP_TICK_NS))
        timeout.callback = callback
        timeout.slot = (self.hand + ticks) % WHEEL_SLOTS
        timeout.rotations = ticks // WHEEL_SLOTS
        timeout.armed = True
        timeout.generation += 1
        self.slots[timeout.slot].append((timeout, timeout.generation))

    def cancel(self, timeout: WheelTimeout) -> bool:
        """O(1) amortised: mark dead; the hand sweeps it away."""
        if not timeout.armed:
            return False
        self.cancels += 1
        self.lock_ops += 1
        timeout.armed = False
        timeout.callback = None
        return True

    # -- driven from the clock interrupt ---------------------------------------

    def advance(self) -> int:
        """Advance the hand to 'now'; fire due timeouts."""
        now = self.kernel.engine.now
        self._accumulated_ns += now - self._last_advance_ns
        self._last_advance_ns = now
        fired = 0
        while self._accumulated_ns >= TCP_TICK_NS:
            self._accumulated_ns -= TCP_TICK_NS
            self.hand = (self.hand + 1) % WHEEL_SLOTS
            bucket = self.slots[self.hand]
            if not bucket:
                continue
            survivors = []
            for timeout, generation in bucket:
                if not timeout.armed or timeout.generation != generation:
                    continue            # cancelled/re-armed: swept free
                if timeout.rotations > 0:
                    timeout.rotations -= 1
                    survivors.append((timeout, generation))
                    continue
                timeout.armed = False
                callback = timeout.callback
                timeout.callback = None
                fired += 1
                self.fires += 1
                if callback is not None:
                    callback()
            self.slots[self.hand] = survivors
        return fired


class PerCpuTcpTimers:
    """The re-architected facility: one wheel per CPU."""

    def __init__(self, kernel: VistaKernel, *, cpus: int = 2):
        self.kernel = kernel
        self.wheels = [TcpTimingWheel(kernel, cpu=cpu)
                       for cpu in range(cpus)]
        # Piggyback on the existing clock interrupt: wrap the kernel's
        # handler so every tick also advances the wheels (this is the
        # point — no extra wakeups, no KTIMER ring traffic).
        original = kernel.clock.handler

        def handler(tick_count: int) -> None:
            original(tick_count)
            for wheel in self.wheels:
                wheel.advance()

        kernel.clock.handler = handler

    def wheel_for(self, connection_id: int) -> TcpTimingWheel:
        """Connections hash to the CPU that owns them."""
        return self.wheels[connection_id % len(self.wheels)]

    @property
    def total_operations(self) -> int:
        return sum(w.arms + w.cancels for w in self.wheels)

    @property
    def total_lock_ops(self) -> int:
        return sum(w.lock_ops for w in self.wheels)
