"""NTDLL thread-pool timers.

``CreateThreadpoolTimer``/``SetThreadpoolTimer`` implement a user-level
timer ring multiplexed over a *single* kernel timer per pool
(Section 2.2): NTDLL keeps its due-time-ordered queue in user space and
keeps one NT timer armed for the earliest entry.  This is the layering
the paper highlights — a whole application's worth of timeouts appears
at the kernel as repeated re-arms of one timer, with only the user-mode
stack revealing who is behind each one.
"""

from __future__ import annotations

import heapq
from typing import Callable, Optional

from ..sim.tasks import Task
from .ktimer import VistaKernel

SITE_POOL = ("ntdll!TppTimerpTaskCallback", "ntdll!TppTimerpSet",
             "nt!NtSetTimerEx", "nt!KeSetTimer")


class ThreadpoolTimer:
    """One user-level timer entry (``PTP_TIMER``)."""

    __slots__ = ("pool", "callback", "due_ns", "period_ns", "armed",
                 "_seq", "fired_count")

    def __init__(self, pool: "Threadpool",
                 callback: Callable[["ThreadpoolTimer"], None]):
        self.pool = pool
        self.callback = callback
        self.due_ns = 0
        self.period_ns = 0
        self.armed = False
        self._seq = 0
        self.fired_count = 0


class Threadpool:
    """A process's default thread pool (one backing kernel timer)."""

    def __init__(self, kernel: VistaKernel, task: Task):
        self.kernel = kernel
        self.task = task
        self._queue: list[tuple[int, int, ThreadpoolTimer]] = []
        self._seq = 0
        self._backing = kernel.alloc_ktimer(site=SITE_POOL, owner=task,
                                            domain="user", trace_init=True)
        self._backing.dpc = self._backing_fired
        self._backing_due: Optional[int] = None

    def create_timer(self, callback) -> ThreadpoolTimer:
        """``CreateThreadpoolTimer``."""
        return ThreadpoolTimer(self, callback)

    def set_timer(self, timer: ThreadpoolTimer, due_ns: int, *,
                  period_ns: int = 0) -> None:
        """``SetThreadpoolTimer``: (re)arm; ``due_ns`` is relative."""
        self._seq += 1
        timer.due_ns = self.kernel.engine.now + due_ns
        timer.period_ns = period_ns
        timer.armed = True
        timer._seq = self._seq
        heapq.heappush(self._queue, (timer.due_ns, self._seq, timer))
        self._rearm_backing()

    def cancel_timer(self, timer: ThreadpoolTimer) -> None:
        """``SetThreadpoolTimer(timer, NULL)``: disarm (lazy removal)."""
        timer.armed = False
        self._rearm_backing()

    # -- backing kernel timer management ------------------------------------

    def _earliest(self) -> Optional[ThreadpoolTimer]:
        queue = self._queue
        while queue:
            due, seq, timer = queue[0]
            if timer.armed and timer._seq == seq:
                return timer
            heapq.heappop(queue)
        return None

    def _rearm_backing(self) -> None:
        earliest = self._earliest()
        if earliest is None:
            if self._backing.inserted:
                self.kernel.cancel_timer(self._backing)
            self._backing_due = None
            return
        if self._backing_due == earliest.due_ns:
            return
        self._backing_due = earliest.due_ns
        self.kernel.set_timer(self._backing, earliest.due_ns, absolute=True)

    def _backing_fired(self, _ktimer) -> None:
        now = self.kernel.engine.now
        queue = self._queue
        while queue:
            due, seq, timer = queue[0]
            if due > now:
                break
            heapq.heappop(queue)
            if not timer.armed or timer._seq != seq:
                continue
            timer.armed = False
            timer.fired_count += 1
            if timer.period_ns > 0:
                self.set_timer(timer, timer.period_ns,
                               period_ns=timer.period_ns)
            timer.callback(timer)
        self._backing_due = None
        self._rearm_backing()
