"""NT dispatcher waits: ``WaitForSingleObject`` and friends.

Thread waits with a timeout use a *dedicated* KTIMER embedded in the
thread structure with a fast-path insertion into the timer ring
(Section 2.2) — so they do not go through ``KeSetTimer`` and the
paper's Ke instrumentation missed them.  The authors added one custom
ETW event on thread unblock, logging the block/unblock timestamps, the
user-supplied timeout, and whether the wait was satisfied or timed out
(Section 3.3).  :meth:`DispatcherWaits.wait` reproduces exactly that
record.

``Thread.sleep`` is the same mechanism with no object to wait on.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

from ..sim.tasks import Task
from .ktimer import KTimer, VistaKernel

SITE_WAIT = ("ntdll!NtWaitForSingleObject", "nt!KeWaitForSingleObject",
             "nt!KiInsertTimerTable")
SITE_SLEEP = ("kernel32!Sleep", "ntdll!NtDelayExecution",
              "nt!KeDelayExecutionThread")

WAIT_TIMEOUT = 0x102
WAIT_OBJECT_0 = 0x0


class WaitHandle:
    """An in-flight thread wait; ``signal()`` satisfies it early."""

    def __init__(self, waits: "DispatcherWaits", task: Task,
                 timer: Optional[KTimer], timeout_ns: Optional[int],
                 site: Tuple[str, ...],
                 on_return: Callable[[int], None]):
        self.waits = waits
        self.task = task
        self.timer = timer
        self.timeout_ns = timeout_ns
        self.site = site
        self.on_return = on_return
        self.blocked_at = waits.kernel.engine.now
        self.done = False

    def signal(self) -> bool:
        """Complete the wait because the object was signalled."""
        return self._complete(satisfied=True, status=WAIT_OBJECT_0)

    def _timer_fired(self, _timer: KTimer) -> None:
        self._complete(satisfied=False, status=WAIT_TIMEOUT)

    def _complete(self, *, satisfied: bool, status: int) -> bool:
        if self.done:
            return False
        self.done = True
        kernel = self.waits.kernel
        if self.timer is not None and self.timer.inserted:
            kernel._remove(self.timer)
        kernel.sink.emit_wait_unblock(
            ts_block=self.blocked_at, ts_unblock=kernel.engine.now,
            timer_id=self.timer.timer_id if self.timer is not None else 0,
            pid=self.task.pid, comm=self.task.comm,
            site=kernel.sites.intern(self.site),
            timeout_ns=self.timeout_ns, satisfied=satisfied)
        self.on_return(status)
        return True


class DispatcherWaits:
    """The wait primitives of one Vista machine."""

    def __init__(self, kernel: VistaKernel):
        self.kernel = kernel
        # The per-thread timer lives in the thread structure: one stable
        # address per thread for its whole life.
        self._thread_timers: dict[tuple[int, int], KTimer] = {}

    def _thread_timer(self, task: Task, thread: int) -> KTimer:
        timer = self._thread_timers.get((task.pid, thread))
        if timer is None:
            timer = self.kernel.alloc_ktimer(site=SITE_WAIT, owner=task,
                                             domain="user")
            timer.traced = False
            self._thread_timers[(task.pid, thread)] = timer
        return timer

    def wait_for_single_object(self, task: Task,
                               timeout_ns: Optional[int],
                               on_return: Callable[[int], None], *,
                               site: Tuple[str, ...] = SITE_WAIT,
                               thread: int = 0) -> WaitHandle:
        """Block a thread of ``task`` until signalled or until
        ``timeout_ns`` passes.

        ``timeout_ns=None`` is INFINITE.  The returned handle's
        ``signal()`` models the awaited object being signalled.
        ``thread`` selects which of the process's threads blocks (each
        has its own embedded KTIMER).
        """
        if timeout_ns is None:
            return WaitHandle(self, task, None, None, site, on_return)
        timer = self._thread_timer(task, thread)
        handle = WaitHandle(self, task, timer, timeout_ns, site, on_return)
        timer.on_signal = None
        timer.dpc = handle._timer_fired
        if timeout_ns <= 0:
            # Zero timeout: poll the object state and return at once.
            self.kernel.engine.call_at(self.kernel.engine.now,
                                       handle._timer_fired, timer)
        else:
            # Fast-path ring insertion: no KeSetTimer event is logged.
            self.kernel._insert(timer, self.kernel.engine.now + timeout_ns)
        return handle

    def sleep(self, task: Task, duration_ns: int,
              on_return: Callable[[int], None]) -> WaitHandle:
        """``Sleep``/``NtDelayExecution``: a wait that only times out."""
        return self.wait_for_single_object(task, duration_ns, on_return,
                                           site=SITE_SLEEP)
