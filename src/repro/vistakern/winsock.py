"""Winsock2 ``select`` via afd.sys.

"Unlike most Unix variants, these are actually implemented as a
blocking ioctl on the afd.sys device driver, which allocates a fresh
KTIMER object and requests a DPC callback at the appropriate expiry
time to complete the ioctl" (Section 2.2).  The fresh allocation (from
a lookaside list, so addresses recycle across unrelated calls) is what
defeats address-based correlation on Vista and motivates the paper's
call-site clustering.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..sim.tasks import Task
from .ktimer import KTimer, VistaKernel

SITE_AFD_SELECT = ("ws2_32!select", "msafd!WSPSelect", "afd!AfdPoll",
                   "nt!KeSetTimer")


class SelectCall:
    """One in-flight ``select`` ioctl with its private KTIMER."""

    def __init__(self, winsock: "Winsock", task: Task,
                 timer: Optional[KTimer],
                 on_return: Callable[[bool], None]):
        self.winsock = winsock
        self.task = task
        self.timer = timer
        self.on_return = on_return
        self.done = False

    def fd_ready(self) -> bool:
        """Socket activity completes the ioctl before the timeout."""
        return self._complete(timed_out=False)

    def _timer_dpc(self, _timer: KTimer) -> None:
        self._complete(timed_out=True)

    def _complete(self, *, timed_out: bool) -> bool:
        if self.done:
            return False
        self.done = True
        kernel = self.winsock.kernel
        if self.timer is not None:
            if self.timer.inserted:
                kernel.cancel_timer(self.timer)
            kernel.free_ktimer(self.timer)
        self.on_return(timed_out)
        return True


class Winsock:
    """Winsock select/poll entry points of one machine."""

    def __init__(self, kernel: VistaKernel):
        self.kernel = kernel

    def select(self, task: Task, timeout_ns: Optional[int],
               on_return: Callable[[bool], None]) -> SelectCall:
        """``select``: ``on_return(timed_out)``.

        ``timeout_ns=None`` blocks indefinitely (no timer allocated).
        """
        if timeout_ns is None:
            return SelectCall(self, task, None, on_return)
        timer = self.kernel.alloc_ktimer(site=SITE_AFD_SELECT, owner=task,
                                         domain="user")
        call = SelectCall(self, task, timer, on_return)
        self.kernel.set_timer(timer, timeout_ns, dpc=call._timer_dpc)
        return call
