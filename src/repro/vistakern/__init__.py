"""Windows Vista timer subsystem model (the paper's Vista side).

Models the NT KTIMER ring processed by the clock-interrupt DPC and the
stack of multiplexing layers above it: dispatcher waits with fast-path
timers, the NT native timer API with APC delivery, NTDLL thread-pool
timer rings, Win32 waitable timers and GUI ``SetTimer`` message
delivery, winsock ``select`` via afd.sys, and the registry lazy-flush
deferred pattern.
"""

from .coalescing import (COALESCING_PERIODS_NS, TickSkippingVistaKernel,
                         coalesced_deadline, set_coalescable_timer)
from .dispatcher import (WAIT_OBJECT_0, WAIT_TIMEOUT, DispatcherWaits,
                         WaitHandle)
from .ktimer import (DEFAULT_CLOCK_PERIOD_NS, MIN_CLOCK_PERIOD_NS, KTimer,
                     VistaKernel)
from .ntapi import NtTimerApi
from .registry import RegistryLazyCloser
from .tcpwheel import (PerCpuTcpTimers, TcpTimingWheel, WheelTimeout)
from .threadpool import Threadpool, ThreadpoolTimer
from .win32 import (USER_TIMER_MINIMUM_NS, WM_TIMER, MessageQueue,
                    WaitableTimers)
from .winsock import SelectCall, Winsock

__all__ = [
    "COALESCING_PERIODS_NS", "TickSkippingVistaKernel",
    "coalesced_deadline", "set_coalescable_timer",
    "WAIT_OBJECT_0", "WAIT_TIMEOUT", "DispatcherWaits", "WaitHandle",
    "DEFAULT_CLOCK_PERIOD_NS", "MIN_CLOCK_PERIOD_NS", "KTimer",
    "VistaKernel", "NtTimerApi", "RegistryLazyCloser", "Threadpool",
    "PerCpuTcpTimers", "TcpTimingWheel", "WheelTimeout",
    "ThreadpoolTimer", "USER_TIMER_MINIMUM_NS", "WM_TIMER",
    "MessageQueue", "WaitableTimers", "SelectCall", "Winsock",
]
