"""Timer coalescing — the paper's Section 5.3 proposal, Vista-style.

The paper argues timers should carry how much expiry precision they
need so the kernel can batch wakeups.  Windows 7 later shipped exactly
this as ``KeSetCoalescableTimer``/``SetWaitableTimerEx`` with a
*tolerable delay*: the kernel may fire the timer anywhere in
``[due, due + tolerance]`` and picks an instant aligned to a coarse
period so co-tolerant timers expire together.

This module implements that interface over the Vista model, plus the
tick-skipping idle mode that makes batching pay off (without it the
periodic clock interrupt wakes the CPU regardless).  The ablation in
``benchmarks/bench_vista_coalescing.py`` measures the wakeup
reduction.
"""

from __future__ import annotations

import heapq
from typing import Callable, Optional

from ..sim.clock import MILLISECOND, SECOND
from .ktimer import KTimer, VistaKernel

#: Coalescing alignments, coarsest first (Windows uses a similar set).
COALESCING_PERIODS_NS = (
    SECOND, 500 * MILLISECOND, 250 * MILLISECOND, 100 * MILLISECOND,
    50 * MILLISECOND, 15_625_000,
)


def coalesced_deadline(due_ns: int, tolerance_ns: int) -> int:
    """Pick the firing instant for a coalescable timer.

    The coarsest alignment period not exceeding the tolerance is
    chosen, and the deadline is rounded *up* to the next multiple of it
    (never earlier than requested, never more than ``tolerance`` late).
    """
    if tolerance_ns <= 0:
        return due_ns
    for period in COALESCING_PERIODS_NS:
        if period > tolerance_ns:
            continue
        aligned = -(-due_ns // period) * period
        if aligned <= due_ns + tolerance_ns:
            return aligned
    return due_ns


def set_coalescable_timer(kernel: VistaKernel, timer: KTimer,
                          due_ns: int, tolerance_ns: int, *,
                          absolute: bool = False, period_ns: int = 0,
                          dpc: Optional[Callable[[KTimer], None]] = None
                          ) -> bool:
    """``KeSetCoalescableTimer``: arm with a tolerable delay."""
    deadline = due_ns if absolute else kernel.engine.now + due_ns
    adjusted = coalesced_deadline(deadline, tolerance_ns)
    if adjusted != deadline:
        kernel.coalescing_hits += 1
        kernel.coalescing_shift_ns += adjusted - deadline
    else:
        kernel.coalescing_misses += 1
    return kernel.set_timer(timer, adjusted, absolute=True,
                            period_ns=period_ns, dpc=dpc)


class TickSkippingVistaKernel(VistaKernel):
    """A Vista machine whose clock interrupt skips idle ticks.

    Models the intelligent-tick behaviour that accompanied coalescing:
    the clock interrupt is suppressed (no CPU wakeup) when no timer in
    the ring is due by the next tick.  Semantics are unchanged — due
    timers always force the tick to run.

    Every clock device this kernel builds (initial and
    ``timeBeginPeriod`` retunes) comes through the base class's
    ``_make_clock``; supplying the idle predicate is the whole
    subclass.
    """

    def _tick_predicate(self) -> Callable[[], bool]:
        return self._tick_skippable

    def _tick_skippable(self) -> bool:
        horizon = self.engine.now + self.clock_period_ns
        ring = self._ring
        while ring:
            deadline, seq, timer = ring[0]
            if timer._seq != seq or not timer.inserted:
                heapq.heappop(ring)
                continue
            return deadline > horizon
        return True
