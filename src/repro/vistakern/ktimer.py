"""The NT kernel KTIMER facility and the Vista machine model.

All Vista timer interfaces bottom out in ``KeSetTimer``/``KeCancelTimer``
on KTIMER objects held in a timer ring that the clock-interrupt
expiration DPC processes (Section 2.2).  Two properties of this layer
drive the paper's Vista findings and are modelled faithfully:

* **Dynamic allocation with lookaside reuse.**  Codepaths like
  ``afd.sys``'s select allocate a fresh KTIMER per call from a lookaside
  list, so the same few addresses are reused by unrelated callers — the
  correlation problem of Section 3.3.  (It is also why Table 2 counts
  only ~150–230 distinct timers against millions of operations.)
* **Clock-interrupt granularity.**  Timers fire when the periodic clock
  interrupt (default 15.625 ms) processes the ring, so sub-tick
  timeouts are delivered a large fraction of their value late — the
  >100% bands of Figures 8–11(b).  Multimedia applications raise the
  interrupt frequency via ``timeBeginPeriod``, which the model exposes
  as :meth:`VistaKernel.request_clock_resolution`.
"""

from __future__ import annotations

import heapq
from typing import Callable, Optional, Tuple

from ..kern.base import BackendBase
from ..sim.clock import MILLISECOND
from ..sim.devices import TickDevice
from ..sim.engine import Engine
from ..sim.power import PowerMeter
from ..sim.rng import RngRegistry
from ..sim.tasks import Task, TaskTable
from ..tracing.etw import EtwSession
from ..tracing.events import FLAG_ABSOLUTE, CallSiteRegistry, EventKind, \
    TimerEvent

#: Vista's default clock interrupt period (64 Hz).
DEFAULT_CLOCK_PERIOD_NS = 15_625_000
#: Finest resolution timeBeginPeriod can request.
MIN_CLOCK_PERIOD_NS = 1 * MILLISECOND


class KTimer:
    """An NT kernel timer object (also a dispatcher object).

    ``dpc`` is the deferred procedure called on expiry; waiters blocked
    on the timer-as-synchronisation-object are handled by the dispatcher
    layer setting ``on_signal``.
    """

    __slots__ = ("timer_id", "site", "owner", "domain", "dpc", "on_signal",
                 "due_ns", "period_ns", "inserted", "_seq", "kernel",
                 "traced")

    def __init__(self, timer_id: int, kernel: "VistaKernel",
                 site: Tuple[str, ...], owner: Task, domain: str):
        self.timer_id = timer_id
        self.kernel = kernel
        self.site = site
        self.owner = owner
        self.domain = domain
        self.dpc: Optional[Callable[["KTimer"], None]] = None
        self.on_signal: Optional[Callable[["KTimer"], None]] = None
        self.due_ns = 0
        self.period_ns = 0
        self.inserted = False
        self._seq = 0      # heap entry validity tag (lazy deletion)
        #: Wait fast-path timers bypass KeSetTimer and are logged only
        #: via the thread-unblock event, so their ring expiry is silent.
        self.traced = True


class VistaKernel(BackendBase):
    """One simulated single-CPU Vista machine."""

    os_name = "vista"

    def __init__(self, engine: Optional[Engine] = None, *, seed: int = 0,
                 sink: Optional[EtwSession] = None,
                 power: Optional[PowerMeter] = None):
        self.engine = engine if engine is not None else Engine()
        self.tasks = TaskTable()
        self.rng = RngRegistry(seed)
        self.sites = CallSiteRegistry()
        self.sink = sink if sink is not None else EtwSession()
        self.power = power if power is not None else PowerMeter()
        self._ring: list[tuple[int, int, KTimer]] = []
        self._seq = 0
        self._next_id = 0x8120_0000
        self._lookaside: list[int] = []
        self.clock_period_ns = DEFAULT_CLOCK_PERIOD_NS
        self._resolution_requests: dict[int, int] = {}
        #: Coalescing outcome counters (see vistakern.coalescing): a
        #: hit shifted the deadline onto a shared alignment boundary, a
        #: miss left it where the caller asked.
        self.coalescing_hits = 0
        self.coalescing_misses = 0
        self.coalescing_shift_ns = 0
        self.clock = self._make_clock(self.clock_period_ns)
        self.clock.start()

    # -- clock construction (subclasses change the idle policy) -------------

    def _make_clock(self, period_ns: int) -> TickDevice:
        """Build the periodic clock-interrupt device; both initial
        construction and ``timeBeginPeriod`` retuning come through
        here, so a subclass overriding :meth:`_tick_predicate` changes
        every clock this kernel ever runs."""
        return TickDevice(self.engine, period_ns, self._clock_interrupt,
                          power=self.power,
                          idle_predicate=self._tick_predicate())

    def _tick_predicate(self) -> Optional[Callable[[], bool]]:
        """Idle predicate for the clock device; ``None`` means the
        stock always-firing Vista clock interrupt."""
        return None

    # -- allocation --------------------------------------------------------

    def alloc_ktimer(self, *, site: Tuple[str, ...], owner: Task,
                     domain: str = "kernel",
                     trace_init: bool = False) -> KTimer:
        """Allocate a KTIMER, reusing lookaside addresses when possible."""
        if self._lookaside:
            timer_id = self._lookaside.pop()
        else:
            self._next_id += 0x40
            timer_id = self._next_id
        timer = KTimer(timer_id, self, self.sites.intern(site), owner,
                       domain)
        if trace_init:
            self._emit(EventKind.INIT, timer)
        return timer

    def free_ktimer(self, timer: KTimer) -> None:
        """Return the object's address to the lookaside list."""
        if timer.inserted:
            self.cancel_timer(timer)
        self._lookaside.append(timer.timer_id)

    # -- the instrumented Ke API (the paper's custom ETW events) -----------

    def _emit(self, kind: EventKind, timer: KTimer,
              timeout_ns: Optional[int] = None,
              expires_ns: Optional[int] = None, flags: int = 0) -> None:
        self.sink.emit(TimerEvent(kind, self.engine.now, timer.timer_id,
                                  timer.owner.pid, timer.owner.comm,
                                  timer.domain, timer.site, timeout_ns,
                                  expires_ns, flags))

    def set_timer(self, timer: KTimer, due_ns: int, *,
                  absolute: bool = False, period_ns: int = 0,
                  dpc: Optional[Callable[[KTimer], None]] = None) -> bool:
        """``KeSetTimer(Ex)``: arm for a relative delay or absolute time.

        Returns True if the timer was already in the ring (NT's return
        convention).  A due time in the past fires on the spot, before
        the call returns — NT completes already-expired timers without
        waiting for a clock interrupt.
        """
        was_inserted = timer.inserted
        if was_inserted:
            self._remove(timer)
        if dpc is not None:
            timer.dpc = dpc
        deadline = due_ns if absolute else self.engine.now + due_ns
        relative = deadline - self.engine.now
        timer.period_ns = period_ns
        self._emit(EventKind.SET, timer, timeout_ns=max(relative, 0),
                   expires_ns=deadline,
                   flags=FLAG_ABSOLUTE if absolute else 0)
        if deadline <= self.engine.now:
            self._fire(timer, deadline)
        else:
            self._insert(timer, deadline)
        return was_inserted

    def cancel_timer(self, timer: KTimer) -> bool:
        """``KeCancelTimer``: returns True if the timer was in the ring."""
        was_inserted = timer.inserted
        if was_inserted:
            self._remove(timer)
        self._emit(EventKind.CANCEL, timer,
                   expires_ns=timer.due_ns if was_inserted else None)
        return was_inserted

    # -- ring maintenance ----------------------------------------------------

    def _insert(self, timer: KTimer, deadline: int) -> None:
        self._seq += 1
        timer.due_ns = deadline
        timer._seq = self._seq
        timer.inserted = True
        heapq.heappush(self._ring, (deadline, self._seq, timer))

    def _remove(self, timer: KTimer) -> None:
        timer.inserted = False   # heap entry goes stale; skipped on pop

    def _clock_interrupt(self, _ticks: int) -> None:
        """The clock ISR queues the expiration DPC; process due timers."""
        now = self.engine.now
        ring = self._ring
        while ring:
            deadline, seq, timer = ring[0]
            if timer._seq != seq or not timer.inserted:
                heapq.heappop(ring)
                continue
            if deadline > now:
                break
            heapq.heappop(ring)
            timer.inserted = False
            self._fire(timer, deadline)

    def _fire(self, timer: KTimer, deadline: int) -> None:
        if timer.traced:
            self._emit(EventKind.EXPIRE, timer, expires_ns=deadline)
        if timer.period_ns > 0:
            # Periodic timers are re-inserted by the expiry DPC itself;
            # no KeSetTimer call (and hence no SET event) occurs.
            self._insert(timer, self.engine.now + timer.period_ns)
        if timer.on_signal is not None:
            timer.on_signal(timer)
        if timer.dpc is not None:
            timer.dpc(timer)

    # -- clock resolution (timeBeginPeriod) ----------------------------------

    def request_clock_resolution(self, task: Task, period_ns: int) -> None:
        """``timeBeginPeriod``: raise the clock interrupt frequency."""
        period_ns = max(period_ns, MIN_CLOCK_PERIOD_NS)
        self._resolution_requests[task.pid] = period_ns
        self._apply_resolution()

    def release_clock_resolution(self, task: Task) -> None:
        """``timeEndPeriod``."""
        self._resolution_requests.pop(task.pid, None)
        self._apply_resolution()

    def _apply_resolution(self) -> None:
        period = min(self._resolution_requests.values(),
                     default=DEFAULT_CLOCK_PERIOD_NS)
        if period != self.clock_period_ns:
            self.clock_period_ns = period
            self.clock.stop()
            self.clock = self._make_clock(period)
            self.clock.start()

    # -- portable surface (repro.kern) ---------------------------------------

    def portable_timer(self, owner: Task, *, name: str,
                       domain: str = "user") -> "VistaPortableTimer":
        """An OS-neutral handle lowering to ``KeSetTimer``."""
        return VistaPortableTimer(self, owner, name, domain)


class VistaPortableTimer:
    """The portable arm/cancel verbs over one KTIMER.

    Each verb is an explicit ``KeSetTimer`` (the way application-level
    Vista timers behave), so portable episodes carry SET records on
    every arming rather than the silent periodic re-insertion path.
    """

    __slots__ = ("_kernel", "_timer", "_callback")

    def __init__(self, kernel: VistaKernel, owner: Task, name: str,
                 domain: str):
        self._kernel = kernel
        self._callback = None
        self._timer = kernel.alloc_ktimer(
            site=(f"app!{name}", "portable_arm", "nt!KeSetTimer"),
            owner=owner, domain=domain)

    def _expired(self, _timer) -> None:
        callback = self._callback
        if callback is not None:
            callback()

    def arm_after(self, delay_ns: int, callback) -> None:
        self._callback = callback
        self._kernel.set_timer(self._timer, delay_ns, dpc=self._expired)

    def arm_periodic(self, period_ns: int, callback) -> None:
        def tick() -> None:
            callback()
            self._kernel.set_timer(self._timer, period_ns,
                                   dpc=self._expired)
        self._callback = tick
        self._kernel.set_timer(self._timer, period_ns, dpc=self._expired)

    def arm_watchdog(self, timeout_ns: int, callback) -> None:
        # KeSetTimer on an inserted timer implicitly cancels and
        # re-arms; the trace shows a fresh SET (episode re-armed).
        self._callback = callback
        self._kernel.set_timer(self._timer, timeout_ns, dpc=self._expired)

    def cancel(self) -> bool:
        return self._kernel.cancel_timer(self._timer)

    @property
    def pending(self) -> bool:
        return self._timer.inserted
