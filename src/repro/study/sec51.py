"""The Section 5.1 study at scale: adaptive vs fixed timeouts.

The paper's core proposal replaces arbitrary human round numbers
("30 seconds") with a request to "time out once the system is 99%
confident that a message will never be arriving".  The machinery
lives in :mod:`repro.core.adaptive`; this module drives it with heavy
traffic and reports the comparison the paper only sketches:

1. run the **serverfarm** workload (both backends; ``--hosts/--cpus``
   for cluster scenes) and harvest its *request population* — how
   many request/response waits each of the thousands of persistent
   connections performed;
2. replay that population under every **network condition**
   (:mod:`repro.sim.netmodel`: LAN, WAN, jitter, loss, scripted
   LAN→WAN level shifts) through every **timeout policy** — fixed
   5/15/30 s, TCP's Jacobson estimator, and the learned-distribution
   :class:`~repro.core.adaptive.AdaptiveTimeout` at 95%/99%
   confidence;
3. per policy × condition cell, report the **spurious-timeout rate**,
   the **failure-detection latency tail** (p50/p99/max) and
   **wakeups per connection**, rendered as a Table-style comparison
   (:func:`repro.core.report.render_sec51`) and mirrored into the
   metrics registry as ``repro_sec51_*`` series.

Every cell is a pure function of ``(seed, population, condition,
policy)``: the latency stream for a condition is drawn from one named
:class:`~repro.sim.rng.RngStream` shared by all policies (each policy
sees *exactly* the same network), so the study is byte-identical
across ``--jobs`` worker counts and repeated runs.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.adaptive import (AdaptiveTimeout, JacobsonEstimator,
                             simulate_wait_policy)
from ..sim.netmodel import NetModel, get_condition
from ..sim.rng import RngStream

__all__ = [
    "POLICIES", "PolicySpec", "Sec51Cell", "Sec51LiveTracker",
    "Sec51Result", "WARMUP_WAITS", "get_policy", "harvest_population",
    "policy_names", "register_policy", "run_sec51_cells",
    "run_sec51_study",
]

#: Waits excluded from every cell's counters while the estimators
#: train (the fixed policies skip the same prefix, so the comparison
#: is steady-state for both sides).
WARMUP_WAITS = 32

#: Floor under every learned timeout: no real kernel would arm a
#: sub-50-ms failure detector from a handful of samples, and the floor
#: keeps early quantile noise from producing spurious wakeups on a
#: quiet LAN.
LEARNED_FLOOR_S = 0.05

#: Cold-start timeout for the learned policies — the arbitrary human
#: default the study is arguing against, deliberately.
INITIAL_TIMEOUT_S = 30.0


@dataclass(frozen=True)
class PolicySpec:
    """One timeout policy the study sweeps."""

    name: str
    kind: str                       #: "fixed" or "adaptive"
    fixed_timeout: float = INITIAL_TIMEOUT_S
    #: Fresh-estimator factory for adaptive policies.
    make: Optional[Callable[[], object]] = None
    description: str = ""


#: Registered policies, in sweep/table order.
POLICIES: Dict[str, PolicySpec] = {}


def register_policy(spec: PolicySpec, *,
                    replace: bool = False) -> PolicySpec:
    if spec.name in POLICIES and not replace:
        raise ValueError(f"policy {spec.name!r} already registered")
    POLICIES[spec.name] = spec
    return spec


def get_policy(name: str) -> PolicySpec:
    found = POLICIES.get(name)
    if found is None:
        raise KeyError(f"unknown timeout policy {name!r}; "
                       f"registered: {sorted(POLICIES)}")
    return found


def policy_names() -> List[str]:
    return list(POLICIES)


def _make_jacobson() -> JacobsonEstimator:
    return JacobsonEstimator(min_timeout=LEARNED_FLOOR_S,
                             no_sample_timeout=INITIAL_TIMEOUT_S)


#: Safety multiplier over the learned quantile.  The tail beyond the
#: 99th percentile still has to clear the bar: for the study's
#: lognormal conditions the largest of N draws sits near
#: ``median * exp(sigma * z_N)`` (z_N ~ 4.3 at N=1e5), so 3x over the
#: learned q99 keeps steady-state spurious wakeups at zero through
#: ~1e5 waits on sigma <= 0.5 links while remaining ~25x tighter than
#: a fixed 5 s timeout on a WAN.
SAFETY = 3.0


def _make_p2(confidence: float) -> Callable[[], AdaptiveTimeout]:
    def make() -> AdaptiveTimeout:
        return AdaptiveTimeout(confidence=confidence, safety=SAFETY,
                               initial_timeout=INITIAL_TIMEOUT_S,
                               min_timeout=LEARNED_FLOOR_S)
    return make


for _seconds in (5, 15, 30):
    register_policy(PolicySpec(
        f"fixed-{_seconds}", "fixed", fixed_timeout=float(_seconds),
        description=f"constant {_seconds} s timeout"))
register_policy(PolicySpec(
    "jacobson", "adaptive", make=_make_jacobson,
    description="TCP's SRTT/RTTVAR control loop (RFC 6298)"))
register_policy(PolicySpec(
    "p2-95", "adaptive", make=_make_p2(0.95),
    description="95%-confidence learned distribution (P2 quantile)"))
register_policy(PolicySpec(
    "p2-99", "adaptive", make=_make_p2(0.99),
    description="99%-confidence learned distribution (P2 quantile)"))


# ---------------------------------------------------------------------------
# Cells
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Sec51Cell:
    """One policy × condition measurement over a request population."""

    backend: str
    condition: str
    policy: str
    connections: int
    waits: int
    failures: int
    false_timeouts: int
    wakeups: int
    spurious_rate: float
    detection_p50: float
    detection_p99: float
    detection_max: float
    #: Level-shift relearns performed by the estimator (0 for fixed).
    relearned: int
    #: The timeout in force at the end of the stream.
    timeout_last: float

    @property
    def wakeups_per_connection(self) -> float:
        if self.connections == 0:
            return 0.0
        return self.wakeups / self.connections


#: Pickled across the worker pool: one cell request.
_CellJob = Tuple[str, str, str, int, int, int]


def _simulate_cell(job: _CellJob) -> Sec51Cell:
    """Pure cell computation — deterministic in its arguments alone."""
    backend, cond_name, policy_name, connections, waits, seed = job
    condition = get_condition(cond_name)
    spec = get_policy(policy_name)
    # One stream per (backend, condition): every policy in the cell
    # column replays the identical network.
    rng = RngStream(seed, f"sec51.{backend}.{cond_name}")
    latencies = NetModel(condition, rng).stream(waits)
    if spec.kind == "fixed":
        estimator = None
        outcome = simulate_wait_policy(
            latencies, policy="fixed", fixed_timeout=spec.fixed_timeout,
            warmup=WARMUP_WAITS)
    else:
        estimator = spec.make()
        outcome = simulate_wait_policy(
            latencies, policy="adaptive", adaptive=estimator,
            warmup=WARMUP_WAITS)
    return Sec51Cell(
        backend=backend, condition=cond_name, policy=policy_name,
        connections=connections, waits=outcome.waits,
        failures=outcome.failures,
        false_timeouts=outcome.false_timeouts,
        wakeups=outcome.wakeups,
        spurious_rate=outcome.false_timeout_rate,
        detection_p50=outcome.detection_quantile(0.50),
        detection_p99=outcome.detection_quantile(0.99),
        detection_max=outcome.detection_max,
        relearned=getattr(estimator, "relearned", 0),
        timeout_last=outcome.timeline[-1] if outcome.timeline else 0.0)


# ---------------------------------------------------------------------------
# Study orchestration
# ---------------------------------------------------------------------------

@dataclass
class Sec51Result:
    """The full policy × condition × backend grid."""

    seed: int
    duration_ns: int
    hosts: int
    cpus: int
    backends: Tuple[str, ...]
    conditions: Tuple[str, ...]
    policies: Tuple[str, ...]
    #: backend -> (connections opened, total request waits).
    populations: Dict[str, Tuple[int, int]]
    cells: Dict[Tuple[str, str, str], Sec51Cell]

    def cell(self, backend: str, condition: str,
             policy: str) -> Sec51Cell:
        return self.cells[(backend, condition, policy)]

    def grid(self) -> Iterable[Sec51Cell]:
        """Cells in rendering order: backend, condition, policy."""
        for backend in self.backends:
            for condition in self.conditions:
                for policy in self.policies:
                    yield self.cells[(backend, condition, policy)]


def harvest_population(run) -> List[int]:
    """Per-connection request-wait counts from a serverfarm run.

    Accepts a :class:`~repro.kern.machine.WorkloadRun` or a
    :class:`~repro.kern.cluster.ClusterRun` (per-host farms are
    concatenated in host order).  Works identically on batch,
    streaming (``retain_events=False``) and cluster runs because the
    counts live on the farm component, not in the trace.
    """
    host_runs = getattr(run, "runs", None) or [run]
    population: List[int] = []
    for host in host_runs:
        farm = host.components.get("farm")
        if farm is None or not hasattr(farm, "request_counts"):
            raise ValueError(
                "sec51 needs a serverfarm run (no 'farm' component "
                f"with request counts on this {type(run).__name__})")
        population.extend(farm.request_counts)
    return population


def _normalize_population(population) -> Tuple[int, int]:
    """(connections, waits) from either a per-conn list or the pair."""
    if isinstance(population, tuple) and len(population) == 2:
        return int(population[0]), int(population[1])
    counts = list(population)
    return len(counts), sum(counts)


def run_sec51_cells(populations: Dict[str, Sequence[int]], *,
                    conditions: Sequence[str],
                    policies: Sequence[str],
                    seed: int = 0, jobs: Optional[int] = None,
                    duration_ns: int = 0, hosts: int = 1,
                    cpus: int = 1) -> Sec51Result:
    """Sweep the policy × condition grid over given populations.

    ``populations`` maps backend name to either the per-connection
    wait-count list :func:`harvest_population` returns or a
    ``(connections, waits)`` pair.  Cells are independent; ``jobs``
    spreads them over a process pool with results identical to a
    serial run (the pool silently falls back to serial where
    ``multiprocessing`` is unavailable).
    """
    conditions = tuple(conditions)
    policies = tuple(policies)
    for name in conditions:
        get_condition(name)
    for name in policies:
        get_policy(name)
    backends = tuple(populations)
    normalized = {backend: _normalize_population(pop)
                  for backend, pop in populations.items()}
    cell_jobs: List[_CellJob] = [
        (backend, condition, policy, *normalized[backend], seed)
        for backend in backends
        for condition in conditions
        for policy in policies]
    cells = _run_cells(cell_jobs, jobs)
    return Sec51Result(
        seed=seed, duration_ns=duration_ns, hosts=hosts, cpus=cpus,
        backends=backends, conditions=conditions, policies=policies,
        populations=normalized,
        cells={(cell.backend, cell.condition, cell.policy): cell
               for cell in cells})


def _run_cells(cell_jobs: Sequence[_CellJob],
               jobs: Optional[int]) -> List[Sec51Cell]:
    if jobs is None or jobs <= 0:
        jobs = os.cpu_count() or 1
    jobs = min(jobs, len(cell_jobs))
    if jobs <= 1:
        return [_simulate_cell(job) for job in cell_jobs]
    try:
        with multiprocessing.get_context().Pool(jobs) as pool:
            return pool.map(_simulate_cell, cell_jobs)
    except (ImportError, OSError, PermissionError, AttributeError,
            TypeError, pickle.PicklingError):
        # Same serial fallback the study driver uses for sandboxed
        # interpreters without fork/semaphores.
        return [_simulate_cell(job) for job in cell_jobs]


def run_sec51_study(*, backends: Optional[Sequence[str]] = None,
                    conditions: Optional[Sequence[str]] = None,
                    policies: Optional[Sequence[str]] = None,
                    minutes: float = 0.5, seed: int = 0,
                    connections: int = 250, hosts: int = 1,
                    cpus: int = 1, jobs: Optional[int] = None,
                    stream: bool = False,
                    progress=None) -> Sec51Result:
    """The whole Section 5.1 study: serverfarm populations + grid.

    ``stream=True`` harvests the population through the bounded-memory
    path (``retain_events=False`` with a live streaming suite) — the
    result is byte-identical because the population lives on the farm
    components, which see the same deterministic dispatch either way.
    ``hosts``/``cpus`` run the population on a cluster scene / the
    per-CPU sharded engine wheel, mirroring ``timerstudy run``.
    """
    from ..kern.registry import backend_names
    from ..sim.clock import MINUTE
    from ..workloads import WORKLOADS

    if backends is None:
        backends = [name for name in backend_names()
                    if (name, "serverfarm") in WORKLOADS]
    backends = list(backends)
    for backend in backends:
        if (backend, "serverfarm") not in WORKLOADS:
            known = sorted(os_name for os_name, workload in WORKLOADS
                           if workload == "serverfarm")
            raise KeyError(f"no serverfarm workload for backend "
                           f"{backend!r}; registered: {known}")
    if conditions is None:
        conditions = ("lan", "datacenter", "wan", "jittery",
                      "lossy-wan", "lan-wan-shift")
    if policies is None:
        policies = tuple(policy_names())
    # Fail on bad names before paying for the population runs.
    for name in conditions:
        get_condition(name)
    for name in policies:
        get_policy(name)
    duration_ns = int(minutes * MINUTE)

    def note(message: str) -> None:
        if progress is not None:
            progress(message)

    populations: Dict[str, List[int]] = {}
    for backend in backends:
        note(f"populating {backend}/serverfarm "
             f"({hosts} host(s) x {cpus} CPU(s), {minutes:g} min)")
        run = _run_population(backend, duration_ns, seed=seed,
                              connections=connections, hosts=hosts,
                              cpus=cpus, stream=stream)
        populations[backend] = harvest_population(run)
    note(f"simulating {len(backends) * len(conditions) * len(policies)}"
         f" cells ({len(conditions)} conditions x {len(policies)} "
         "policies per backend)")
    return run_sec51_cells(populations, conditions=conditions,
                           policies=policies, seed=seed, jobs=jobs,
                           duration_ns=duration_ns, hosts=hosts,
                           cpus=cpus)


def _run_population(backend: str, duration_ns: int, *, seed: int,
                    connections: int, hosts: int, cpus: int,
                    stream: bool):
    """One serverfarm run, mirroring the CLI's run-mode routing."""
    from ..workloads import WORKLOADS

    sinks = None
    retain = True
    if stream:
        from ..core.streaming import StreamingSuite
        sinks = [StreamingSuite(backend, "serverfarm")]
        retain = False
    if hosts > 1:
        from ..kern.cluster import Cluster
        cluster = Cluster([backend] * hosts, seed=seed, cpus=cpus,
                          sinks=sinks, retain_events=retain)
        cluster.scene("serverfarm", connections=connections)
        run = cluster.finish("serverfarm", duration_ns)
    else:
        runner = WORKLOADS[(backend, "serverfarm")]
        if cpus > 1:
            from ..sim.sched import use_scheduler
            with use_scheduler(f"sharded:{cpus}"):
                run = runner(duration_ns, seed=seed, sinks=sinks,
                             retain_events=retain,
                             connections=connections)
        else:
            run = runner(duration_ns, seed=seed, sinks=sinks,
                         retain_events=retain, connections=connections)
    if sinks:
        for sink in sinks:
            finish = getattr(sink, "finish", None)
            if finish is not None:
                finish(duration_ns)
    return run


# ---------------------------------------------------------------------------
# Live tracking (the serve daemon's sec51 collector)
# ---------------------------------------------------------------------------

class Sec51LiveTracker:
    """A miniature Section 5.1 cell advanced in virtual time.

    The serve daemon has no offline request population, so its
    ``sec51`` collector runs a continuous one: a fixed request rate
    per network condition, one shared latency stream per condition,
    one estimator per policy.  ``advance(virtual_ns)`` catches the
    simulation up to the daemon's virtual clock (deterministic: the
    number of waits is a pure function of virtual time), and
    ``collect`` mirrors the tallies into the daemon's registry as
    ``repro_sec51_live_*`` series.
    """

    def __init__(self, *, seed: int = 0,
                 conditions: Sequence[str] = ("lan", "wan"),
                 policies: Sequence[str] = ("fixed-30", "jacobson",
                                            "p2-99"),
                 rate_hz: float = 25.0):
        self.conditions = tuple(conditions)
        self.policies = tuple(policies)
        self.rate_hz = rate_hz
        self._models = {
            name: NetModel(get_condition(name),
                           RngStream(seed, f"sec51.live.{name}"))
            for name in self.conditions}
        self._emitted = {name: 0 for name in self.conditions}
        self._cells = {}
        for condition in self.conditions:
            for policy in self.policies:
                spec = get_policy(policy)
                estimator = spec.make() if spec.kind == "adaptive" \
                    else None
                self._cells[(condition, policy)] = {
                    "spec": spec, "estimator": estimator, "waits": 0,
                    "failures": 0, "false_timeouts": 0, "wakeups": 0,
                    "timeout": (spec.fixed_timeout
                                if estimator is None
                                else estimator.timeout())}

    def advance(self, virtual_ns: int) -> None:
        """Feed every cell the waits that virtual time has accrued."""
        target = int(virtual_ns * 1e-9 * self.rate_hz)
        for condition in self.conditions:
            model = self._models[condition]
            while self._emitted[condition] < target:
                index = self._emitted[condition]
                self._emitted[condition] = index + 1
                latency = model.sample(index, 0)
                for policy in self.policies:
                    self._step(self._cells[(condition, policy)],
                               latency)

    def _step(self, cell: dict, latency: Optional[float]) -> None:
        estimator = cell["estimator"]
        timeout = cell["spec"].fixed_timeout if estimator is None \
            else estimator.timeout()
        cell["timeout"] = timeout
        cell["waits"] += 1
        if latency is None:
            cell["failures"] += 1
            cell["wakeups"] += 1
            return
        if latency > timeout:
            cell["false_timeouts"] += 1
            cell["wakeups"] += 1
        if estimator is not None:
            estimator.observe(latency)

    def collect(self, registry, labels: dict) -> None:
        """Mirror the live tallies into ``registry``."""
        names = tuple(labels) + ("condition", "policy")
        waits = registry.counter(
            "repro_sec51_live_waits_total",
            "Request waits simulated by the live Section 5.1 cell.",
            names)
        failures = registry.counter(
            "repro_sec51_live_failures_total",
            "Genuine failures (reply never arriving) in the live "
            "cell.", names)
        spurious = registry.counter(
            "repro_sec51_live_false_timeouts_total",
            "Spurious timeouts: the policy fired although the reply "
            "was coming.", names)
        wakeups = registry.counter(
            "repro_sec51_live_wakeups_total",
            "Timer expirations (failure detections + spurious "
            "wakeups).", names)
        timeout = registry.gauge(
            "repro_sec51_live_timeout_seconds",
            "The timeout each policy is currently handing out.",
            names)
        for (condition, policy), cell in self._cells.items():
            series = {"condition": condition, "policy": policy}
            series.update(labels)
            waits.set_total(cell["waits"], **series)
            failures.set_total(cell["failures"], **series)
            spurious.set_total(cell["false_timeouts"], **series)
            wakeups.set_total(cell["wakeups"], **series)
            timeout.set(cell["timeout"], **series)
