"""Evaluation studies built on top of the reproduction.

The :mod:`repro.core` analyses *reproduce* the paper's measurements;
this package *evaluates* its proposals.  Each study module drives a
workload population through competing designs and reports a pinned,
regression-gated comparison:

* :mod:`repro.study.sec51` — the headline: adaptive ("99% confident
  the message will never arrive") versus fixed 5/15/30 s timeouts on
  the serverfarm request population under synthetic network
  conditions (:mod:`repro.sim.netmodel`).
"""

from .sec51 import (POLICIES, Sec51Cell, Sec51LiveTracker, Sec51Result,
                    harvest_population, get_policy, policy_names,
                    run_sec51_cells, run_sec51_study)

__all__ = [
    "POLICIES", "Sec51Cell", "Sec51LiveTracker", "Sec51Result",
    "get_policy", "harvest_population", "policy_names",
    "run_sec51_cells", "run_sec51_study",
]
