"""ETW provider-manifest registry (winevt-kb style).

Windows event providers are identified by GUID; everything readable
about them — the provider name, its keywords, the events it can log —
lives in a *manifest* that tooling resolves the GUID through.  The
telemetry daemon does the same for its ETW-style sinks: a session
carries only ``provider_guid``, and this registry maps the GUID back
to a :class:`ProviderManifest` so ``/metrics`` series and collector
names say ``Repro-Timer-Provider`` instead of a brace-wrapped hex
string.  Third-party backends ship their own manifests by calling
:func:`register_provider` next to their ``register_backend`` call.

The paper's own provider (the four custom timer events of §3.3) is
registered at import, sourced from
:meth:`repro.tracing.etw.EtwSession.provider_manifest`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

__all__ = ["ProviderManifest", "provider_for", "provider_label",
           "provider_names", "register_provider",
           "unregister_provider"]


def _normalise_guid(guid: str) -> str:
    return guid.strip().lower().strip("{}")


@dataclass(frozen=True)
class ProviderManifest:
    """One ETW provider: identity plus the schema facts the daemon
    surfaces (name for labels, keywords and event names for docs and
    ``/statusz``)."""

    guid: str
    name: str
    keywords: Tuple[str, ...] = ()
    events: Tuple[str, ...] = field(default=())

    @property
    def key(self) -> str:
        return _normalise_guid(self.guid)


_PROVIDERS: dict[str, ProviderManifest] = {}


def register_provider(manifest, *, replace: bool = False
                      ) -> ProviderManifest:
    """Install a provider manifest; accepts a :class:`ProviderManifest`
    or a plain dict (``guid``/``name``/``keywords``/``events``)."""
    if isinstance(manifest, dict):
        manifest = ProviderManifest(
            guid=manifest["guid"], name=manifest["name"],
            keywords=tuple(manifest.get("keywords", ())),
            events=tuple(manifest.get("events", ())))
    if manifest.key in _PROVIDERS and not replace:
        raise ValueError(
            f"provider {manifest.guid!r} already registered as "
            f"{_PROVIDERS[manifest.key].name!r}")
    _PROVIDERS[manifest.key] = manifest
    return manifest


def unregister_provider(guid: str) -> None:
    _PROVIDERS.pop(_normalise_guid(guid), None)


def provider_for(guid: str) -> Optional[ProviderManifest]:
    """The manifest registered for ``guid``, or ``None``."""
    return _PROVIDERS.get(_normalise_guid(guid))


def provider_label(guid: str) -> str:
    """Human-readable label for a GUID: the manifest name when known,
    the normalised GUID otherwise (an unmanifested provider stays
    observable, just less readable)."""
    manifest = provider_for(guid)
    return manifest.name if manifest is not None \
        else _normalise_guid(guid)


def provider_names() -> tuple[str, ...]:
    return tuple(manifest.name for manifest in _PROVIDERS.values())


def _register_builtin() -> None:
    from ..tracing.etw import EtwSession
    manifest = EtwSession.provider_manifest()
    if provider_for(manifest["guid"]) is None:
        register_provider(manifest)


_register_builtin()
