"""repro.serve — the long-running telemetry daemon.

``timerstudy serve`` turns the PR 5 pull-collected metrics into a live
telemetry system in the tcollector/scalyr-agent mold: a daemon that
runs a workload continuously (virtual time advancing in real-time
slices over the streaming path) and exposes what it sees three ways —
a Prometheus ``/metrics`` endpoint, ``/healthz`` + ``/statusz`` JSON,
and OpenTSDB-style ``put`` line output.  Collection is driven by a
collector plugin registry (:mod:`~repro.serve.collectors`) with
per-collector error quarantine (:mod:`~repro.serve.scheduler`), and
ETW-side collectors resolve through a provider-manifest registry
(:mod:`~repro.serve.manifest`).
"""

from .collectors import (COLLECTOR_FACTORIES, Collector,
                         build_collectors, collector_factory,
                         register_collector_factory)
from .daemon import ServeConfig, ServeDaemon
from .httpd import TelemetryServer
from .manifest import (ProviderManifest, provider_for, provider_label,
                       provider_names, register_provider,
                       unregister_provider)
from .opentsdb import OpenTsdbWriter, parse_line, snapshot_lines
from .scheduler import CollectorScheduler, CollectorState

__all__ = [
    "COLLECTOR_FACTORIES", "Collector", "CollectorScheduler",
    "CollectorState", "OpenTsdbWriter", "ProviderManifest",
    "ServeConfig", "ServeDaemon", "TelemetryServer",
    "build_collectors", "collector_factory", "parse_line",
    "provider_for", "provider_label", "provider_names",
    "register_collector_factory", "register_provider",
    "snapshot_lines", "unregister_provider",
]
