"""The ``timerstudy serve`` daemon loop.

Batch mode answers "what happened?" after a run; the daemon answers
"what is happening?" *while* one runs.  It builds a machine for any
registered backend, lays a portable workload on it, and then advances
virtual time in **real-time slices**: every tick it computes how much
virtual time the wall clock (times ``speed``) says should have
elapsed and pushes the engine forward by exactly that much via
``run_for`` — the paper's continuous-instrumentation methodology (§3)
applied to the simulator itself.  Around that loop:

* a :class:`~repro.core.streaming.StreamingSuite` rides the live sink
  (bounded O(active-timers) analysis state, PR 3's path),
* the backend's real trace buffer (relayfs / ETW session) is drained
  each tick — the daemon *is* the paper's user-space reader, so
  memory stays bounded and the drain counters become live telemetry,
* the collector scheduler fills one long-lived registry, so counters
  on ``/metrics`` are cumulative and increase monotonically between
  scrapes; consecutive cycles additionally derive per-second
  ``:rate`` gauges (:mod:`repro.obs.delta`),
* an optional :class:`~repro.serve.opentsdb.OpenTsdbWriter` streams
  every datapoint as ``put`` lines (stdout or a TSD socket).

Everything the HTTP surface reads — snapshots, health, status — is
published as immutable objects, so the server threads never touch
live simulation state.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from ..kern.machine import Machine
from ..kern.registry import backend_traits
from ..core.streaming import StreamingSuite
from ..obs.delta import derive_rates
from ..obs.metrics import MetricsRegistry, MetricsSnapshot
from .collectors import Collector, build_collectors
from .httpd import TelemetryServer
from .opentsdb import OpenTsdbWriter
from .scheduler import CollectorScheduler

__all__ = ["ServeConfig", "ServeDaemon"]

_NS = 1e-9


@dataclass
class ServeConfig:
    """Everything `timerstudy serve` can tune."""

    os_name: str = "linux"
    workload: str = "portable"
    seed: int = 0
    #: Serve an N-host cluster on one shared clock (1 = standalone).
    hosts: int = 1
    #: Per-CPU engine wheel shards (1 = the single wheel).
    cpus: int = 1
    host: str = "127.0.0.1"
    #: 0 binds an ephemeral port (tests, parallel daemons).
    port: int = 0
    #: Virtual seconds simulated per wall second.
    speed: float = 1.0
    #: Wall seconds between loop ticks (one `run_for` slice each).
    tick_s: float = 0.25
    #: Default collector interval (per-collector overrides win).
    interval_s: float = 1.0
    #: '-' for stdout, 'HOST:PORT' for a TSD socket, None = off.
    opentsdb: Optional[object] = None
    opentsdb_interval_s: float = 1.0
    #: Stop after this many wall seconds (None = run until stopped).
    duration_s: Optional[float] = None
    #: Extra collectors appended after the built-in set.
    extra_collectors: Sequence[Collector] = field(default_factory=tuple)


def _resolve_workload(os_name: str, workload: str):
    from ..workloads.portable import PORTABLE_WORKLOADS
    definition = PORTABLE_WORKLOADS.get(workload)
    if definition is None:
        raise KeyError(
            f"serve runs portable workload definitions; unknown "
            f"workload {workload!r}, choose from "
            f"{sorted(PORTABLE_WORKLOADS)}")
    backend_traits(os_name)     # raises nothing; validated by Machine
    return definition


class ServeDaemon:
    """One long-running telemetry daemon instance."""

    def __init__(self, config: ServeConfig, *,
                 clock: Callable[[], float] = time.monotonic,
                 wall_time: Callable[[], float] = time.time):
        self.config = config
        self.clock = clock
        self.wall_time = wall_time
        definition = _resolve_workload(config.os_name, config.workload)
        self.suite = StreamingSuite(config.os_name, config.workload)
        self.cluster = None
        if config.hosts > 1:
            from ..kern.cluster import Cluster
            self.cluster = Cluster(config.os_name, hosts=config.hosts,
                                   cpus=config.cpus, seed=config.seed,
                                   sinks=[self.suite])
            for machine in self.cluster.machines:
                definition.build(machine)
            # Host 1 fronts the fleet: its kernel carries the shared
            # engine every machine schedules on.
            self.machine = self.cluster.machines[0]
        else:
            self.machine = Machine(config.os_name, seed=config.seed,
                                   sinks=[self.suite], cpus=config.cpus)
            definition.build(self.machine)
        self.kernel = self.machine.kernel
        self.traits = backend_traits(config.os_name)
        self.labels = {"os": config.os_name,
                       "workload": config.workload}
        self.registry = MetricsRegistry()
        collectors = build_collectors(self)
        collectors.extend(config.extra_collectors)
        self.scheduler = CollectorScheduler(
            collectors, self.registry, self.labels,
            default_interval_s=config.interval_s, clock=clock)
        self.writer = (OpenTsdbWriter(config.opentsdb)
                       if config.opentsdb is not None else None)
        self.server = TelemetryServer(self, host=config.host,
                                      port=config.port)
        self._virtual_start = self.kernel.now
        self._latest: Optional[MetricsSnapshot] = None
        self._prev_cycle: Optional[tuple] = None   # (snapshot, mono)
        self._stop = threading.Event()
        self._t0: Optional[float] = None
        self._next_tsdb = 0.0
        self.ticks = 0
        self.cycles = 0
        self.drained_events = 0
        self.running = False

    # -- derived quantities ---------------------------------------------

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def virtual_ns(self) -> int:
        """Virtual nanoseconds simulated since the daemon started."""
        return self.kernel.now - self._virtual_start

    @property
    def uptime_s(self) -> float:
        return 0.0 if self._t0 is None else self.clock() - self._t0

    @property
    def slip_s(self) -> float:
        """How far virtual time lags the real-time target.  Near zero
        when the host keeps up; growing when `speed` asks for more
        simulation than the hardware delivers."""
        return self.uptime_s * self.config.speed \
            - self.virtual_ns * _NS

    # -- published state (read by HTTP threads) -------------------------

    def latest_snapshot(self) -> Optional[MetricsSnapshot]:
        return self._latest

    def health(self) -> tuple:
        quarantined = sum(
            1 for state in self.scheduler.status().values()
            if state["quarantined"])
        healthy = self.cycles > 0
        return healthy, {
            "status": "ok" if healthy else "starting",
            "uptime_s": round(self.uptime_s, 3),
            "cycles": self.cycles,
            "collectors_quarantined": quarantined,
        }

    def status(self) -> dict:
        doc = {
            "backend": self.config.os_name,
            "workload": self.config.workload,
            "seed": self.config.seed,
            "hosts": self.config.hosts,
            "cpus": self.config.cpus,
            "speed": self.config.speed,
            "running": self.running,
            "uptime_s": round(self.uptime_s, 3),
            "virtual_seconds": self.virtual_ns * _NS,
            "slip_seconds": round(self.slip_s, 3),
            "ticks": self.ticks,
            "cycles": self.cycles,
            "drained_events": self.drained_events,
            "collector_errors": self.scheduler.total_errors,
            "collectors": self.scheduler.status(),
            "streaming": self.suite.live_state(),
        }
        if self.writer is not None:
            doc["opentsdb"] = {
                "target": str(self.config.opentsdb),
                "lines_written": self.writer.lines_written,
                "errors": self.writer.errors,
            }
        return doc

    # -- the loop --------------------------------------------------------

    def _advance(self, elapsed_s: float) -> None:
        target_ns = int(elapsed_s * self.config.speed * 1e9)
        delta = target_ns - self.virtual_ns
        if delta > 0:
            self.kernel.run_for(delta)
        # The daemon is the user-space reader of the paper's §3.2
        # design: drain the trace buffers every slice so retained
        # records stay bounded no matter how long we serve.
        machines = self.cluster.machines if self.cluster is not None \
            else (self.machine,)
        for machine in machines:
            self.drained_events += len(machine.buffer.drain())

    def _publish(self) -> None:
        base = self.registry.snapshot()
        now = self.clock()
        combined = base
        if self._prev_cycle is not None:
            prev, prev_at = self._prev_cycle
            dt = now - prev_at
            if dt > 0:
                rates = derive_rates(prev, base, dt)
                combined = MetricsSnapshot(base.samples + rates.samples)
        # Only roll the rate window forward about once per default
        # interval, so rates average over a scrape-sized window
        # instead of a single tick.
        if self._prev_cycle is None or \
                now - self._prev_cycle[1] >= self.config.interval_s:
            self._prev_cycle = (base, now)
        self._latest = combined
        self.cycles += 1

    def _maybe_opentsdb(self) -> None:
        if self.writer is None or self._latest is None:
            return
        now = self.clock()
        if now < self._next_tsdb:
            return
        self._next_tsdb = now + self.config.opentsdb_interval_s
        self.writer.write_snapshot(self._latest,
                                   int(self.wall_time()))

    def start(self) -> None:
        """Bind and start the HTTP surface (non-blocking)."""
        self.server.start()

    def run(self) -> None:
        """The blocking daemon loop; returns after :meth:`stop` (or
        once ``duration_s`` wall seconds have passed)."""
        self._t0 = self.clock()
        self.running = True
        try:
            while not self._stop.is_set():
                elapsed = self.clock() - self._t0
                if self.config.duration_s is not None \
                        and elapsed >= self.config.duration_s:
                    break
                self._advance(elapsed)
                if self.scheduler.run_due(self.clock()):
                    self._publish()
                self._maybe_opentsdb()
                self.ticks += 1
                self._stop.wait(self.config.tick_s)
        finally:
            self.running = False
            if not self.suite.finished:
                self.suite.finish(self.virtual_ns)

    def stop(self) -> None:
        """Ask the loop to exit (thread-safe, idempotent)."""
        self._stop.set()

    def close(self) -> None:
        """Tear down the HTTP server and the OpenTSDB sink."""
        self.stop()
        self.server.stop()
        if self.writer is not None:
            self.writer.close()

    def serve(self) -> None:
        """start() + run() + close() — the CLI entry point."""
        self.start()
        try:
            self.run()
        finally:
            self.close()
