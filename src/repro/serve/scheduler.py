"""Collector scheduling with per-collector error isolation.

tcollector's hard-won rule: one misbehaving collector must never take
the agent down.  Each :class:`~repro.serve.collectors.Collector` runs
on its own interval; an exception quarantines *that collector* with
exponential backoff (doubling from ``base_backoff_s`` up to
``max_backoff_s``) while everything else keeps collecting.  The
failure is held — last error string, consecutive-failure count,
remaining quarantine — and surfaced verbatim on ``/statusz`` so a
quarantined collector is visible, not silent.

The scheduler is clock-agnostic (``clock`` is injected, monotonic
seconds) so tests drive it with a fake clock.
"""

from __future__ import annotations

import time
from typing import Callable, Optional, Sequence

from ..obs.metrics import MetricsRegistry
from .collectors import Collector

__all__ = ["CollectorScheduler", "CollectorState"]


class CollectorState:
    """Mutable run-state for one scheduled collector."""

    __slots__ = ("next_due", "runs", "errors", "consecutive_errors",
                 "quarantined_until", "last_error", "last_run",
                 "last_duration_s")

    def __init__(self) -> None:
        self.next_due = 0.0
        self.runs = 0
        self.errors = 0
        self.consecutive_errors = 0
        self.quarantined_until = 0.0
        self.last_error: Optional[str] = None
        self.last_run: Optional[float] = None
        self.last_duration_s = 0.0

    def quarantined(self, now: float) -> bool:
        return now < self.quarantined_until

    def status(self, now: float, interval_s: float) -> dict:
        return {
            "interval_s": interval_s,
            "runs": self.runs,
            "errors": self.errors,
            "consecutive_errors": self.consecutive_errors,
            "quarantined": self.quarantined(now),
            "quarantined_for_s": max(0.0,
                                     self.quarantined_until - now),
            "last_error": self.last_error,
            "staleness_s": (None if self.last_run is None
                            else now - self.last_run),
            "last_duration_ms": self.last_duration_s * 1e3,
        }


class CollectorScheduler:
    """Run a set of collectors into one registry, isolating failures."""

    def __init__(self, collectors: Sequence[Collector],
                 registry: MetricsRegistry, labels: dict, *,
                 default_interval_s: float = 1.0,
                 base_backoff_s: float = 2.0,
                 max_backoff_s: float = 60.0,
                 clock: Callable[[], float] = time.monotonic):
        self.collectors = list(collectors)
        self.registry = registry
        self.labels = dict(labels)
        self.default_interval_s = default_interval_s
        self.base_backoff_s = base_backoff_s
        self.max_backoff_s = max_backoff_s
        self.clock = clock
        self.states = {collector.name: CollectorState()
                       for collector in self.collectors}
        #: Total collection errors across all collectors (mirrored
        #: into the exposition by the daemon collector).
        self.total_errors = 0

    def _interval(self, collector: Collector) -> float:
        return collector.interval_s if collector.interval_s is not None \
            else self.default_interval_s

    def run_due(self, now: Optional[float] = None) -> int:
        """Run every collector that is due and not quarantined.
        Returns how many ran (successfully or not)."""
        if now is None:
            now = self.clock()
        ran = 0
        for collector in self.collectors:
            state = self.states[collector.name]
            if now < state.next_due or state.quarantined(now):
                continue
            ran += 1
            started = self.clock()
            try:
                collector.collect(self.registry, dict(self.labels))
            except Exception as err:          # noqa: BLE001 — isolate
                state.errors += 1
                state.consecutive_errors += 1
                self.total_errors += 1
                backoff = min(
                    self.max_backoff_s,
                    self.base_backoff_s
                    * 2 ** (state.consecutive_errors - 1))
                state.quarantined_until = now + backoff
                state.last_error = f"{type(err).__name__}: {err}"
            else:
                state.runs += 1
                state.consecutive_errors = 0
                state.quarantined_until = 0.0
                state.last_error = None
                state.last_run = now
            state.last_duration_s = self.clock() - started
            state.next_due = now + self._interval(collector)
        return ran

    def status(self, now: Optional[float] = None) -> dict:
        """Per-collector state for ``/statusz`` (name-keyed, JSON-safe)."""
        if now is None:
            now = self.clock()
        return {collector.name:
                self.states[collector.name].status(
                    now, self._interval(collector))
                for collector in self.collectors}

    def healthy(self, now: Optional[float] = None) -> bool:
        """True when no collector is currently quarantined."""
        if now is None:
            now = self.clock()
        return not any(state.quarantined(now)
                       for state in self.states.values())
