"""Collector plugins: named, per-subsystem telemetry sources.

The daemon does not hard-code what it measures.  Each subsystem is
wrapped in a :class:`Collector` — a name, a collection interval, and a
``collect(registry, labels)`` callable that mirrors the subsystem's
live counters into the daemon's long-lived
:class:`~repro.obs.metrics.MetricsRegistry` (the same pull-collection
functions ``run --metrics`` uses post-hoc, now called repeatedly while
virtual time advances).  Collectors come from three places:

* the **backend-neutral set** (engine, power, trace sinks, streaming
  suite, the daemon's own heartbeat), built for every backend;
* the backend's :meth:`~repro.kern.registry.BackendTraits.collectors`
  trait — names resolved through the :data:`COLLECTOR_FACTORIES`
  registry, so a plugin backend ships its collector ("wheel" for the
  Linux tvec forest, "ktimer" for the Vista ring) alongside its
  kernel model;
* ETW-style sinks, keyed through the provider-manifest registry
  (:mod:`repro.serve.manifest`): the session's ``provider_guid``
  resolves to a provider name that labels the series, so a
  third-party backend's sessions are first-class once it registers a
  manifest.

Every collector runs under the scheduler's error isolation
(:mod:`repro.serve.scheduler`): one throwing collector is quarantined
with backoff and reported on ``/statusz``, never killing the daemon.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..obs.collect import (_collect_engine, _collect_power,
                           _collect_ring, _collect_sched,
                           _collect_ticks, _collect_wheels,
                           _walk_sinks, _sink_kind, collect_sink,
                           collect_streaming)
from ..obs.metrics import MetricsRegistry
from .manifest import provider_label

__all__ = ["COLLECTOR_FACTORIES", "Collector", "build_collectors",
           "collector_factory", "register_collector_factory"]

_NS = 1e-9


@dataclass
class Collector:
    """One scheduled telemetry source."""

    name: str
    collect: Callable[[MetricsRegistry, dict], None]
    #: Seconds between collections; ``None`` adopts the daemon default.
    interval_s: Optional[float] = None


#: name -> ``factory(daemon) -> Collector | None`` (None = not
#: applicable to this daemon, silently skipped).
COLLECTOR_FACTORIES: dict[str, Callable] = {}


def register_collector_factory(name: str, factory: Callable, *,
                               replace: bool = False) -> None:
    """Install a collector factory under ``name`` — the name a
    backend's ``traits.collectors()`` (or ``build_collectors``'s
    ``extra_names``) resolves."""
    if name in COLLECTOR_FACTORIES and not replace:
        raise ValueError(f"collector factory {name!r} already "
                         "registered")
    COLLECTOR_FACTORIES[name] = factory


def collector_factory(name: str, *, replace: bool = False) -> Callable:
    """Decorator form of :func:`register_collector_factory`."""
    def install(factory: Callable) -> Callable:
        register_collector_factory(name, factory, replace=replace)
        return factory
    return install


# -- backend-neutral collectors -------------------------------------------

@collector_factory("engine")
def _engine_collector(daemon) -> Collector:
    kernel = daemon.kernel

    def collect(registry: MetricsRegistry, labels: dict) -> None:
        _collect_engine(kernel.engine, daemon.virtual_ns, registry,
                        labels)
    return Collector("engine", collect)


@collector_factory("sched")
def _sched_collector(daemon) -> Collector:
    """Engine-scheduler internals (wheel occupancy, cascades, garbage)
    — the live view of the million-timer scheduling layer."""
    kernel = daemon.kernel

    def collect(registry: MetricsRegistry, labels: dict) -> None:
        _collect_sched(kernel.engine.scheduler, registry, labels)
    return Collector("sched", collect)


@collector_factory("power")
def _power_collector(daemon) -> Collector:
    kernel = daemon.kernel

    def collect(registry: MetricsRegistry, labels: dict) -> None:
        _collect_power(kernel.power, daemon.virtual_ns, registry,
                       labels)
        _collect_ticks(kernel, registry, labels)
    return Collector("power", collect)


@collector_factory("streaming")
def _streaming_collector(daemon) -> Optional[Collector]:
    suite = daemon.suite
    if suite is None:
        return None

    def collect(registry: MetricsRegistry, labels: dict) -> None:
        collect_streaming(suite, registry, labels)
    return Collector("streaming", collect)


@collector_factory("cluster")
def _cluster_collector(daemon) -> Optional[Collector]:
    """Per-host telemetry for a cluster daemon: topology gauges plus a
    host-labelled rollup of each machine's trace buffer and power
    model.  The series live under their own ``repro_cluster_*`` names
    (not extra labels on the generic families — a metric's label set is
    fixed at first registration, and the ``power``/sink collectors
    already own the unlabelled view through host 1's shared engine).
    The engine and scheduler are shared across hosts and covered, with
    per-CPU shard occupancy, by the ``engine``/``sched`` collectors."""
    cluster = getattr(daemon, "cluster", None)
    if cluster is None:
        return None

    def collect(registry: MetricsRegistry, labels: dict) -> None:
        names = tuple(labels)
        registry.gauge(
            "repro_cluster_hosts",
            "Machines sharing this daemon's engine and clock.",
            names).set(cluster.hosts, **labels)
        registry.gauge(
            "repro_cluster_cpus",
            "Per-CPU wheel shards on the shared engine.",
            names).set(cluster.cpus, **labels)
        host_names = names + ("host", "backend")
        records = registry.counter(
            "repro_cluster_host_records_total",
            "Trace records offered by each host's kernel.", host_names)
        retained = registry.gauge(
            "repro_cluster_host_retained",
            "Records currently held in each host's buffer.", host_names)
        wakeups = registry.counter(
            "repro_cluster_host_wakeups_total",
            "Idle wakeups per host.", host_names)
        energy = registry.gauge(
            "repro_cluster_host_energy_joules",
            "Modelled energy per host over the served window.",
            host_names)
        for host_id, machine in enumerate(cluster.machines, start=1):
            host = {"host": str(host_id), "backend": machine.os_name}
            buffer = machine.buffer
            records.set_total(buffer.emitted, **host, **labels)
            retained.set(len(buffer), **host, **labels)
            power = machine.kernel.power
            wakeups.set_total(power.wakeups, **host, **labels)
            energy.set(power.energy_joules(daemon.virtual_ns),
                       **host, **labels)
    return Collector("cluster", collect)


@collector_factory("sec51")
def _sec51_collector(daemon) -> Collector:
    """A live Section 5.1 cell advanced alongside the workload.

    The daemon has no offline request population, so this runs a
    continuous miniature of the policy study
    (:class:`~repro.study.sec51.Sec51LiveTracker`): a fixed request
    rate per network condition, every policy fed the identical latency
    stream.  Deterministic in virtual time — two daemons at the same
    seed and speed export the same ``repro_sec51_live_*`` series.
    """
    from ..study.sec51 import Sec51LiveTracker
    tracker = Sec51LiveTracker(seed=daemon.config.seed)

    def collect(registry: MetricsRegistry, labels: dict) -> None:
        tracker.advance(daemon.virtual_ns)
        tracker.collect(registry, labels)
    return Collector("sec51", collect)


@collector_factory("daemon")
def _daemon_collector(daemon) -> Collector:
    def collect(registry: MetricsRegistry, labels: dict) -> None:
        names = tuple(labels)
        registry.counter(
            "repro_daemon_ticks_total",
            "Real-time slices the daemon has advanced virtual time "
            "by.", names).set_total(daemon.ticks, **labels)
        registry.gauge(
            "repro_daemon_virtual_seconds",
            "Virtual time simulated since the daemon started.",
            names).set(daemon.virtual_ns * _NS, **labels)
        registry.gauge(
            "repro_daemon_uptime_seconds",
            "Wall-clock time since the daemon started.",
            names, volatile=True).set(daemon.uptime_s, **labels)
        registry.gauge(
            "repro_daemon_slip_seconds",
            "Virtual seconds behind the real-time target "
            "(wall x speed - simulated).",
            names, volatile=True).set(daemon.slip_s, **labels)
        registry.counter(
            "repro_daemon_drained_events_total",
            "Trace records drained from the backend buffer by the "
            "daemon's reader loop.",
            names).set_total(daemon.drained_events, **labels)
    return Collector("daemon", collect)


# -- backend-specific collectors (trait-resolved) -------------------------

@collector_factory("wheel")
def _wheel_collector(daemon) -> Optional[Collector]:
    kernel = daemon.kernel
    if not hasattr(kernel, "bases"):
        return None

    def collect(registry: MetricsRegistry, labels: dict) -> None:
        _collect_wheels(kernel, registry, labels)
    return Collector("wheel", collect)


@collector_factory("ktimer")
def _ktimer_collector(daemon) -> Optional[Collector]:
    kernel = daemon.kernel
    if not hasattr(kernel, "_ring"):
        return None

    def collect(registry: MetricsRegistry, labels: dict) -> None:
        _collect_ring(kernel, registry, labels)
    return Collector("ktimer", collect)


# -- sink collectors (manifest-resolved for ETW) --------------------------

def _sink_collector(sink) -> Optional[Collector]:
    kind = _sink_kind(sink)
    if kind is None:
        return None
    extra: dict = {}
    name = kind
    guid = getattr(sink, "provider_guid", None)
    if guid is not None:
        # ETW-style session: the GUID resolves to the manifest name,
        # which labels the series and names the collector.
        extra = {"provider": provider_label(guid)}
        name = f"etw:{provider_label(guid)}"

    def collect(registry: MetricsRegistry, labels: dict) -> None:
        merged = dict(labels)
        merged.update(extra)
        collect_sink(sink, registry, merged)
    return Collector(name, collect)


def build_collectors(daemon, *, extra_names=()) -> list:
    """Assemble the daemon's collector set.

    Backend-neutral collectors first, then the backend's trait-named
    ones (plus ``extra_names``), then one collector per recognised
    trace sink.  Unknown names raise (a registered backend promising a
    collector it did not install is a configuration bug, not a silent
    skip).
    """
    names = ["engine", "sched", "power", "streaming", "cluster",
             "sec51", "daemon"]
    names += [name for name in (*daemon.traits.collectors(),
                                *extra_names)
              if name not in names]
    collectors = []
    for name in names:
        factory = COLLECTOR_FACTORIES.get(name)
        if factory is None:
            raise KeyError(
                f"unknown collector {name!r}; registered: "
                f"{sorted(COLLECTOR_FACTORIES)}")
        collector = factory(daemon)
        if collector is not None:
            collectors.append(collector)
    for sink in _walk_sinks(daemon.kernel.sink):
        collector = _sink_collector(sink)
        if collector is not None:
            collectors.append(collector)
    return collectors
