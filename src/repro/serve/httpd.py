"""The daemon's HTTP surface: ``/metrics``, ``/healthz``, ``/statusz``.

Built on the standard library only (``http.server`` on a
``ThreadingHTTPServer``), because the container rule is "no new
dependencies" and a telemetry endpoint needs nothing more:

* ``GET /metrics``   — Prometheus text exposition of the latest
  collection cycle (plus derived ``:rate`` gauges),
* ``GET /metrics.json`` — the same snapshot as JSON
  (:meth:`MetricsSnapshot.to_json`),
* ``GET /healthz``   — liveness: 200 + small JSON once the first
  collection cycle has completed, 503 before,
* ``GET /statusz``   — the full status document: uptime,
  virtual-vs-wall slip, per-collector staleness/quarantine/last-error.

Handlers only *read* immutable snapshots the daemon publishes
atomically, so no locking is needed against the simulation thread.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

__all__ = ["TelemetryServer"]

#: Prometheus text exposition content type.
PROM_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class _Handler(BaseHTTPRequestHandler):
    server_version = "timerstudy-serve/1"

    # Silence the default per-request stderr logging.
    def log_message(self, fmt, *args):      # noqa: A003
        pass

    def _send(self, code: int, body: str, content_type: str) -> None:
        payload = body.encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _send_json(self, code: int, doc: dict) -> None:
        self._send(code, json.dumps(doc, sort_keys=True) + "\n",
                   "application/json")

    def do_GET(self) -> None:               # noqa: N802 (stdlib name)
        daemon = self.server.daemon         # type: ignore[attr-defined]
        path = self.path.split("?", 1)[0]
        if path == "/metrics":
            snapshot = daemon.latest_snapshot()
            if snapshot is None:
                self._send(503, "no collection cycle yet\n",
                           "text/plain")
                return
            self._send(200, snapshot.render(), PROM_CONTENT_TYPE)
        elif path == "/metrics.json":
            snapshot = daemon.latest_snapshot()
            if snapshot is None:
                self._send_json(503, {"error": "no collection cycle yet"})
                return
            self._send(200, snapshot.to_json() + "\n",
                       "application/json")
        elif path == "/healthz":
            healthy, doc = daemon.health()
            self._send_json(200 if healthy else 503, doc)
        elif path == "/statusz":
            self._send_json(200, daemon.status())
        else:
            self._send(404, f"no such endpoint {path!r}; try /metrics, "
                       "/metrics.json, /healthz, /statusz\n",
                       "text/plain")


class TelemetryServer:
    """The threaded HTTP server wrapping one daemon.

    ``port=0`` binds an ephemeral port; :attr:`port` reports the real
    one after :meth:`start`.
    """

    def __init__(self, daemon, *, host: str = "127.0.0.1",
                 port: int = 0):
        self._server = ThreadingHTTPServer((host, port), _Handler)
        self._server.daemon_threads = True
        self._server.daemon = daemon        # type: ignore[attr-defined]
        self._thread: threading.Thread | None = None

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    @property
    def host(self) -> str:
        return self._server.server_address[0]

    def start(self) -> None:
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="timerstudy-serve-http", daemon=True)
        self._thread.start()

    def stop(self) -> None:
        # shutdown() blocks on serve_forever()'s exit handshake, so it
        # must only run when start() actually spun the serving thread.
        if self._thread is not None:
            self._server.shutdown()
            self._thread.join(timeout=5.0)
            self._thread = None
        self._server.server_close()
