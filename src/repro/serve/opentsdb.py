"""OpenTSDB-style line output (the tcollector idiom).

tcollector agents speak one line per datapoint::

    put <metric> <unix-seconds> <value> <tag=value> [<tag=value> ...]

to stdout (picked up by a supervising agent) or straight into a TSD's
TCP socket.  :func:`snapshot_lines` renders a
:class:`~repro.obs.metrics.MetricsSnapshot` in that shape — counters
and gauges one line each, histograms expanded into per-bucket lines
(``le`` tag) plus ``.sum``/``.count`` — and :class:`OpenTsdbWriter`
streams the lines to either sink.  Non-finite values are skipped (a
TSD rejects them; losing one sample beats poisoning the stream).
"""

from __future__ import annotations

import math
import socket
import sys
from typing import Iterable, Iterator, Optional

from ..obs.metrics import MetricsSnapshot, Sample

__all__ = ["OpenTsdbWriter", "parse_line", "sample_lines",
           "snapshot_lines"]


def _tagsafe(value: str) -> str:
    """OpenTSDB tags allow no whitespace or '='; degrade, don't drop."""
    return str(value).replace(" ", "_").replace("=", "_") or "_"


def _format_value(value: float) -> Optional[str]:
    if not math.isfinite(value):
        return None
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)


def _put(metric: str, ts: int, value: float,
         tags: Iterable[tuple]) -> Optional[str]:
    rendered = _format_value(value)
    if rendered is None:
        return None
    suffix = "".join(f" {name}={_tagsafe(val)}" for name, val in tags)
    return f"put {metric} {ts} {rendered}{suffix}"


def sample_lines(sample: Sample, ts: int) -> Iterator[str]:
    """The OpenTSDB lines for one frozen sample."""
    if sample.kind == "histogram":
        cumulative, total, count = sample.value
        for bound, running in cumulative:
            le = "inf" if bound == float("inf") else _format_value(bound)
            line = _put(f"{sample.name}.bucket", ts, running,
                        (*sample.labels, ("le", le)))
            if line is not None:
                yield line
        for suffix, value in ((".sum", total), (".count", count)):
            line = _put(sample.name + suffix, ts, value, sample.labels)
            if line is not None:
                yield line
        return
    line = _put(sample.name, ts, sample.value, sample.labels)
    if line is not None:
        yield line


def snapshot_lines(snapshot: MetricsSnapshot, ts: int) -> list[str]:
    """Render a whole snapshot, one datapoint per line."""
    lines: list[str] = []
    for sample in snapshot.samples:
        lines.extend(sample_lines(sample, ts))
    return lines


def parse_line(line: str) -> tuple:
    """Inverse of :func:`_put` — ``(metric, ts, value, tags)``; raises
    ``ValueError`` on anything that is not a well-formed put line."""
    parts = line.split()
    if len(parts) < 4 or parts[0] != "put":
        raise ValueError(f"not an OpenTSDB put line: {line!r}")
    metric, ts, value = parts[1], int(parts[2]), float(parts[3])
    tags = {}
    for pair in parts[4:]:
        name, sep, val = pair.partition("=")
        if not sep or not name:
            raise ValueError(f"malformed tag {pair!r} in {line!r}")
        tags[name] = val
    return metric, ts, value, tags


class OpenTsdbWriter:
    """Stream put lines to stdout (``target='-'``), a file-like object,
    or a TSD's TCP socket (``target='host:port'``).

    The TCP path reconnects lazily: a send failure drops that flush
    (counted in :attr:`errors`) and the next flush retries, so a
    bouncing TSD never stalls the daemon loop.
    """

    def __init__(self, target="-"):
        self.target = target
        self.lines_written = 0
        self.errors = 0
        self._stream = None
        self._sock: Optional[socket.socket] = None
        self._address: Optional[tuple] = None
        if target == "-":
            self._stream = sys.stdout
        elif hasattr(target, "write"):
            self._stream = target
        else:
            host, sep, port = str(target).rpartition(":")
            if not sep:
                raise ValueError(
                    f"OpenTSDB target must be '-', a stream, or "
                    f"HOST:PORT (got {target!r})")
            self._address = (host, int(port))

    def _socket(self) -> socket.socket:
        if self._sock is None:
            self._sock = socket.create_connection(self._address,
                                                  timeout=5.0)
        return self._sock

    def write_snapshot(self, snapshot: MetricsSnapshot,
                       ts: int) -> int:
        """Emit every datapoint of ``snapshot`` stamped ``ts``;
        returns lines written (0 on a failed TCP flush)."""
        lines = snapshot_lines(snapshot, ts)
        if not lines:
            return 0
        payload = "\n".join(lines) + "\n"
        if self._stream is not None:
            self._stream.write(payload)
            self._stream.flush()
        else:
            try:
                self._socket().sendall(payload.encode("ascii"))
            except OSError:
                self.errors += 1
                self.close()
                return 0
        self.lines_written += len(lines)
        return len(lines)

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None
