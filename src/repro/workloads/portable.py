"""Portable workload definitions (one definition, every backend).

Two kinds of portability, layered:

* :data:`PORTABLE_IDLE` / :data:`PORTABLE_WEBSERVER` — the paper's
  workloads as single definitions.  Each names a *scene* (the
  per-backend baseline the workload modules register) and the
  :class:`~repro.kern.portable.PortableWorkload` machinery resolves
  the OS-appropriate builder through the registry.  Running one of
  these produces a trace byte-identical to the legacy per-OS runner —
  pinned by ``tests/kern/test_portable_parity.py``.

* :data:`PORTABLE_MIX` — a workload written *only* against the
  OS-neutral ``arm_after``/``arm_periodic``/``arm_watchdog`` verbs.
  It exhibits one timer of each Section 4.1 usage pattern, so running
  it on any backend must classify the same taxonomy — the paper's
  cross-OS claim as a test.
"""

from __future__ import annotations

from ..kern.portable import PortableApp, PortableWorkload
from ..sim.clock import SECOND, millis

# Scene registration happens at import of the workload modules.
from . import idle as _idle          # noqa: F401
from . import serverfarm as _farm    # noqa: F401
from . import webserver as _web      # noqa: F401


class HeartbeatApp(PortableApp):
    """PERIODIC: a 1 s tick that always expires and re-arms at once."""

    name = "heartbeat"

    def start(self) -> None:
        self.beats = 0
        self.timer("heartbeat").arm_periodic(SECOND, self._beat)

    def _beat(self) -> None:
        self.beats += 1


class GuardApp(PortableApp):
    """WATCHDOG: a 5 s guard pushed back by activity that (almost)
    always arrives first."""

    name = "guard"

    def start(self) -> None:
        self.trips = 0
        self._guard = self.timer("io_guard")
        self._activity()

    def _activity(self) -> None:
        self._guard.arm_watchdog(5 * SECOND, self._tripped)
        self.call_after(self.rng.exponential(millis(800)), self._activity)

    def _tripped(self) -> None:
        self.trips += 1


class PollLoopApp(PortableApp):
    """DELAY: fixed 300 ms sleeps separated by a think-time gap."""

    name = "poller"

    def start(self) -> None:
        self._delay = self.timer("poll_delay")
        self._sleep()

    def _sleep(self) -> None:
        self._delay.arm_after(millis(300), self._woke)

    def _woke(self) -> None:
        # The gap between expiry and the next arming is what separates
        # DELAY from PERIODIC in the classifier.
        self.call_after(self.rng.exponential(millis(200)), self._sleep)


class RpcApp(PortableApp):
    """TIMEOUT: a 5 s guard on a call that completes in milliseconds,
    cancelling the timer nearly every time."""

    name = "rpc"

    def start(self) -> None:
        self.timeouts = 0
        self._timer = self.timer("rpc_timeout")
        self._call()

    def _call(self) -> None:
        self._timer.arm_after(5 * SECOND, self._timed_out)
        self.call_after(self.rng.exponential(millis(30)), self._reply)

    def _reply(self) -> None:
        if self._timer.pending:
            self._timer.cancel()
        self.call_after(self.rng.exponential(millis(500)), self._call)

    def _timed_out(self) -> None:
        self.timeouts += 1


#: The paper's workloads as single cross-backend definitions.
PORTABLE_IDLE = PortableWorkload("idle", scene="idle")
PORTABLE_WEBSERVER = PortableWorkload("webserver", scene="webserver")
#: The datacenter extrapolation: thousands of concurrent persistent
#: connections per host (see :mod:`repro.workloads.serverfarm`).
PORTABLE_SERVERFARM = PortableWorkload("serverfarm", scene="serverfarm")

#: One timer of each usage pattern, armed purely through the portable
#: verbs — no scene, so the trace contains nothing else.
PORTABLE_MIX = PortableWorkload(
    "portable",
    apps=(HeartbeatApp, GuardApp, PollLoopApp, RpcApp))

#: name -> definition, for registries and discovery.
PORTABLE_WORKLOADS = {
    workload.name: workload
    for workload in (PORTABLE_IDLE, PORTABLE_WEBSERVER,
                     PORTABLE_SERVERFARM, PORTABLE_MIX)
}


def run_portable(workload: str, os_name: str, duration_ns=None, *,
                 seed: int = 0, sinks=None, retain_events: bool = True):
    """Run a portable definition by name on any registered backend."""
    definition = PORTABLE_WORKLOADS.get(workload)
    if definition is None:
        raise KeyError(f"unknown portable workload {workload!r}; "
                       f"choose from {sorted(PORTABLE_WORKLOADS)}")
    return definition.run(os_name, duration_ns, seed=seed, sinks=sinks,
                          retain_events=retain_events)


__all__ = [
    "GuardApp", "HeartbeatApp", "PORTABLE_IDLE", "PORTABLE_MIX",
    "PORTABLE_SERVERFARM", "PORTABLE_WEBSERVER", "PORTABLE_WORKLOADS",
    "PollLoopApp", "RpcApp", "run_portable",
]
