"""The Idle workload (both systems).

Linux: the Debian 4.0 base install running X and icewm with stock
daemons (syslogd, inetd, atd, cron, portmapper, gettys), connected to
a LAN with background traffic but serving nothing (Section 3.5).

Vista: a standard desktop install, user logged in, no foreground
applications, 26 background processes.
"""

from __future__ import annotations

from ..kern.registry import register_scene
from ..sim.clock import MILLISECOND, SECOND, millis, seconds
from ..linuxkern.subsystems.block import BlockLayer, JournalDaemon
from ..linuxkern.subsystems.console import ConsoleBlanker
from ..linuxkern.subsystems.housekeeping import standard_housekeeping
from ..linuxkern.subsystems.net import ArpCache, TcpConnection, TcpStack
from .apps import FixedIntervalDaemon, SelectCountdownApp
from .base import DEFAULT_DURATION_NS, Machine, WorkloadRun
from .vista_apps import (VistaBackgroundProcess, VistaKernelBackground)


def build_linux_idle_base(machine: Machine, *,
                          with_x: bool = True) -> dict:
    """The components every Linux workload shares (the booted system)."""
    kernel = machine.kernel
    components: dict = {}

    housekeeping = standard_housekeeping(kernel)
    for timer in housekeeping:
        timer.start()
    components["housekeeping"] = housekeeping

    arp = ArpCache(kernel, machine.rng.stream("net.arp"))
    arp.start()
    components["arp"] = arp

    block = BlockLayer(kernel, machine.rng.stream("block.io"),
                       io_burst_mean_ns=seconds(12))
    block.start()
    components["block"] = block

    journal = JournalDaemon(kernel, machine.rng.stream("block.journal"),
                            write_load=0.05)
    journal.start()
    components["journal"] = journal

    console = ConsoleBlanker(kernel)
    console.start()
    components["console"] = console

    tcp = TcpStack(kernel, machine.rng.stream("net.tcp"),
                   rtt_median_ns=200_000)
    components["tcp"] = tcp

    if with_x:
        x_server = SelectCountdownApp(machine, "Xorg",
                                      nominal_timeout_ns=600 * SECOND,
                                      activity_mean_ns=millis(100))
        x_server.start()
        icewm = SelectCountdownApp(machine, "icewm",
                                   nominal_timeout_ns=60 * SECOND,
                                   activity_mean_ns=millis(400))
        icewm.start()
        components["x_server"] = x_server
        components["icewm"] = icewm

    daemons = [
        FixedIntervalDaemon(machine, "cron", interval_ns=60 * SECOND),
        FixedIntervalDaemon(machine, "atd", interval_ns=60 * SECOND),
        FixedIntervalDaemon(machine, "syslogd", interval_ns=30 * SECOND,
                            use_select=True),
        FixedIntervalDaemon(machine, "init", interval_ns=5 * SECOND,
                            use_select=True, work_ns=MILLISECOND),
        FixedIntervalDaemon(machine, "rpc.statd",
                            interval_ns=15 * SECOND, use_select=True),
    ]
    if with_x:
        # Session clients with fixed select periods: terminal cursor
        # blink and clock redraws — the 0.5/1/2 s user-space expiries
        # of the paper's idle figures.
        daemons.extend([
            FixedIntervalDaemon(machine, "xterm",
                                interval_ns=millis(500), use_select=True,
                                work_ns=MILLISECOND),
            FixedIntervalDaemon(machine, "xterm",
                                interval_ns=millis(500), use_select=True,
                                work_ns=MILLISECOND),
            FixedIntervalDaemon(machine, "wmclock", interval_ns=SECOND,
                                use_select=True, work_ns=MILLISECOND),
            FixedIntervalDaemon(machine, "xload", interval_ns=2 * SECOND,
                                use_select=True, work_ns=MILLISECOND),
        ])
    for daemon in daemons:
        daemon.start()
    components["daemons"] = daemons

    # Occasional inbound LAN connection (monitoring, NFS pings):
    # exercises the socket timers even on an otherwise idle box.
    rng = machine.rng.stream("net.background")

    def background_connection() -> None:
        TcpConnection(tcp, server_side=True, segments=1).start()
        kernel.engine.call_after(
            max(1, int(rng.exponential(seconds(8)))),
            background_connection)

    kernel.engine.call_after(
        max(1, int(rng.exponential(seconds(8)))), background_connection)
    return components


def run_linux_idle(duration_ns: int = DEFAULT_DURATION_NS, *,
                   seed: int = 0, sinks=None,
                   retain_events: bool = True) -> WorkloadRun:
    machine = Machine("linux", seed=seed, sinks=sinks,
                      retain_events=retain_events)
    machine.scene("idle")
    return machine.finish("idle", duration_ns)


# ---------------------------------------------------------------------------
# Vista
# ---------------------------------------------------------------------------

#: 26 background processes of a stock desktop (Section 3.5).
VISTA_BACKGROUND_PROCESSES = (
    ("csrss.exe", (millis(250), seconds(1)), 0.10),
    ("csrss.exe", (seconds(1),), 0.05),
    ("wininit.exe", (seconds(30),), 0.02),
    ("services.exe", (seconds(1), seconds(5)), 0.05),
    ("lsass.exe", (seconds(5),), 0.05),
    ("svchost.exe", (seconds(1),), 0.05),
    ("svchost.exe", (seconds(2),), 0.05),
    ("svchost.exe", (millis(500), seconds(5)), 0.08),
    ("svchost.exe", (seconds(10),), 0.02),
    ("svchost.exe", (seconds(1), seconds(60)), 0.05),
    ("svchost.exe", (seconds(5),), 0.05),
    ("SLsvc.exe", (seconds(30),), 0.02),
    ("winlogon.exe", (seconds(5),), 0.02),
    ("explorer.exe", (millis(500), seconds(1)), 0.15),
    ("taskeng.exe", (seconds(60),), 0.02),
    ("dwm.exe", (millis(100), seconds(1)), 0.20),
    ("audiodg.exe", (millis(10), millis(250)), 0.30),
    ("spoolsv.exe", (seconds(10),), 0.02),
    ("SearchIndexer.exe", (seconds(1), seconds(30)), 0.05),
    ("sidebar.exe", (seconds(1),), 0.10),
    ("smss.exe", (seconds(60),), 0.01),
    ("wmiprvse.exe", (seconds(10),), 0.02),
    ("MSASCui.exe", (seconds(5),), 0.05),
    ("SynTPEnh.exe", (millis(100),), 0.10),   # the audio tray app
    ("wuauclt.exe", (seconds(30),), 0.02),
    ("mobsync.exe", (seconds(60),), 0.02),
)


def build_vista_idle_base(machine: Machine) -> dict:
    components: dict = {}
    background = VistaKernelBackground(machine)
    background.start()
    components["kernel_background"] = background

    processes = []
    for comm, timeouts, satisfied in VISTA_BACKGROUND_PROCESSES:
        process = VistaBackgroundProcess(
            machine, comm, wait_timeouts=timeouts,
            satisfied_probability=satisfied)
        process.start()
        processes.append(process)
    components["processes"] = processes

    from ..vistakern.registry import RegistryLazyCloser
    registry = RegistryLazyCloser(machine.kernel,
                                  machine.rng.stream("vista.registry"))
    registry.start()
    components["registry"] = registry
    return components


def run_vista_idle(duration_ns: int = DEFAULT_DURATION_NS, *,
                   seed: int = 0, sinks=None,
                   retain_events: bool = True) -> WorkloadRun:
    machine = Machine("vista", seed=seed, sinks=sinks,
                      retain_events=retain_events)
    machine.scene("idle")
    return machine.finish("idle", duration_ns)


#: The idle baselines double as the "idle" scene for portable
#: workloads: one definition resolves the OS-appropriate booted system.
register_scene("linux", "idle", build_linux_idle_base)
register_scene("vista", "idle", build_vista_idle_base)
