"""The Webserver workload: Apache under httperf load (Section 3.5).

30000 requests at 10-way parallelism in the paper's 30 minutes
(~16.7 connections/s), each request on its own connection.  X was not
running during the Linux run.  The kernel-side TCP/socket timers
dominate this trace (Table 1: kernel accesses far exceed user-space),
and the filesystem journal's mostly-cancelled 5 s commit timer forms
the 80–100% cluster of Figure 11.
"""

from __future__ import annotations

from ..kern.registry import register_scene
from ..sim.clock import millis, seconds
from ..linuxkern.subsystems.block import BlockLayer, JournalDaemon
from ..linuxkern.subsystems.console import ConsoleBlanker
from ..linuxkern.subsystems.housekeeping import standard_housekeeping
from ..linuxkern.subsystems.net import ArpCache, TcpStack
from .apps import ApacheServer, HttperfDriver
from .base import DEFAULT_DURATION_NS, Machine, WorkloadRun
from .idle import build_vista_idle_base
from .vista_apps import VistaBackgroundProcess


def build_linux_webserver_base(machine: Machine, *,
                               connections_per_second: float = 16.7
                               ) -> dict:
    """The serving system: booted without X, Apache under httperf."""
    kernel = machine.kernel
    components: dict = {}

    # The booted system, but without X (as in the paper's run).
    housekeeping = standard_housekeeping(kernel)
    for timer in housekeeping:
        timer.start()
    components["housekeeping"] = housekeeping

    arp = ArpCache(kernel, machine.rng.stream("net.arp"),
                   lan_event_mean_ns=seconds(2))
    arp.start()
    components["arp"] = arp

    # Access-log writes keep the disk and journal busy.
    block = BlockLayer(kernel, machine.rng.stream("block.io"),
                       io_burst_mean_ns=seconds(1.5))
    block.start()
    components["block"] = block

    journal = JournalDaemon(kernel, machine.rng.stream("block.journal"),
                            write_load=0.85)
    journal.start()
    components["journal"] = journal

    console = ConsoleBlanker(kernel)
    console.start()
    components["console"] = console

    tcp = TcpStack(kernel, machine.rng.stream("net.tcp"),
                   rtt_median_ns=250_000, loss_rate=0.003)
    components["tcp"] = tcp

    apache = ApacheServer(machine, tcp)
    apache.start()
    components["apache"] = apache

    driver = HttperfDriver(machine, apache,
                           connections_per_second=connections_per_second)
    driver.start()
    components["httperf"] = driver
    return components


def run_linux_webserver(duration_ns: int = DEFAULT_DURATION_NS, *,
                        seed: int = 0, sinks=None,
                        retain_events: bool = True,
                        connections_per_second: float = 16.7
                        ) -> WorkloadRun:
    machine = Machine("linux", seed=seed, sinks=sinks,
                      retain_events=retain_events)
    machine.scene("webserver",
                  connections_per_second=connections_per_second)
    return machine.finish("webserver", duration_ns)


def build_vista_webserver_base(machine: Machine, *,
                               connections_per_second: float = 16.7
                               ) -> dict:
    """IIS-style serving over the Vista idle baseline.

    The paper notes the Vista webserver trace looks much like the Vista
    idle trace (background machinery dominates) and, notably, lacks the
    7200 s TCP keepalive timer Linux arms per connection.
    """
    components = build_vista_idle_base(machine)

    worker = VistaBackgroundProcess(
        machine, "w3wp.exe",
        wait_timeouts=(seconds(1), seconds(30)),
        satisfied_probability=0.5, work_ns=millis(2))
    worker.start()
    components["w3wp"] = worker

    kernel = machine.kernel
    rng = machine.rng.stream("vista.http")
    served = {"count": 0}
    components["served"] = served

    def connection() -> None:
        served["count"] += 1
        # http.sys receives the request: a retransmit KTIMER guards the
        # response until the client ACKs (no keepalive on Vista here).
        timer = kernel.alloc_ktimer(
            site=("tcpip!TcpStartRexmitTimer", "nt!KeSetTimer"),
            owner=kernel.tasks.kernel)
        kernel.set_timer(timer, millis(300), dpc=lambda _t: None)
        ack = max(100_000, int(rng.lognormal_latency(400_000, sigma=0.4)))
        kernel.engine.call_after(
            ack, lambda: (kernel.cancel_timer(timer)
                          if timer.inserted else None,
                          kernel.free_ktimer(timer)))
        # Worker waits for the next request with a winsock select.
        call = machine.winsock.select(machine.kernel.tasks.by_comm(
            "w3wp.exe")[0], seconds(30), lambda _to: None)
        kernel.engine.call_after(
            max(1, int(rng.exponential(millis(5)))),
            lambda: call.fd_ready())
        gap = max(1, int(rng.exponential(
            int(1e9 / connections_per_second))))
        kernel.engine.call_after(gap, connection)

    kernel.engine.call_after(millis(50), connection)
    return components


def run_vista_webserver(duration_ns: int = DEFAULT_DURATION_NS, *,
                        seed: int = 0, sinks=None,
                        retain_events: bool = True,
                        connections_per_second: float = 16.7
                        ) -> WorkloadRun:
    machine = Machine("vista", seed=seed, sinks=sinks,
                      retain_events=retain_events)
    machine.scene("webserver",
                  connections_per_second=connections_per_second)
    return machine.finish("webserver", duration_ns)


register_scene("linux", "webserver", build_linux_webserver_base)
register_scene("vista", "webserver", build_vista_webserver_base)
