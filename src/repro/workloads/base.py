"""Workload harness: assembling machines, running them, bundling traces.

The paper's four workloads (Idle, Skype, Firefox, Webserver) each ran
for exactly 30 minutes on both systems.  Runs here default to a shorter
window (the event streams scale linearly; see EXPERIMENTS.md) and can
be run at full paper length with ``duration_ns=PAPER_DURATION_NS``.
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence, Tuple

from ..sim.clock import MINUTE
from ..linuxkern.kernel import LinuxKernel
from ..linuxkern.syscalls import SyscallInterface
from ..tracing.trace import Trace
from ..vistakern.dispatcher import DispatcherWaits
from ..vistakern.ktimer import VistaKernel
from ..vistakern.ntapi import NtTimerApi
from ..vistakern.win32 import WaitableTimers
from ..vistakern.winsock import Winsock

#: The paper's trace length.
PAPER_DURATION_NS = 30 * MINUTE
#: Default for benchmarks: long enough for 7 decades of timeout values
#: to show their behaviour, short enough to iterate on.
DEFAULT_DURATION_NS = 5 * MINUTE


@dataclass
class WorkloadRun:
    """Everything produced by one workload execution."""

    trace: Trace
    kernel: object            #: LinuxKernel or VistaKernel
    components: dict = field(default_factory=dict)

    @property
    def duration_ns(self) -> int:
        return self.trace.duration_ns


class LinuxMachine:
    """A Linux box with its syscall layer, ready for apps."""

    def __init__(self, *, seed: int = 0):
        self.kernel = LinuxKernel(seed=seed)
        self.syscalls = SyscallInterface(self.kernel)
        self.rng = self.kernel.rng

    def finish(self, workload: str, duration_ns: int) -> WorkloadRun:
        self.kernel.run_for(duration_ns)
        trace = Trace(os_name="linux", workload=workload,
                      duration_ns=duration_ns,
                      events=list(self.kernel.sink))
        return WorkloadRun(trace, self.kernel)


class VistaMachine:
    """A Vista box with every timer surface instantiated."""

    def __init__(self, *, seed: int = 0):
        self.kernel = VistaKernel(seed=seed)
        self.waits = DispatcherWaits(self.kernel)
        self.ntapi = NtTimerApi(self.kernel)
        self.waitable = WaitableTimers(self.ntapi)
        self.winsock = Winsock(self.kernel)
        self.rng = self.kernel.rng

    def finish(self, workload: str, duration_ns: int) -> WorkloadRun:
        self.kernel.run_for(duration_ns)
        trace = Trace(os_name="vista", workload=workload,
                      duration_ns=duration_ns,
                      events=list(self.kernel.sink))
        return WorkloadRun(trace, self.kernel)


# -- parallel study driver ----------------------------------------------
#
# One study is eight-plus independent simulations; each is
# deterministic in (os, workload, duration, seed), so they parallelise
# perfectly.  Workers return the trace as compact binfmt bytes (the
# relayfs trick again: fixed-size binary records cross the process
# boundary, text rendering stays in the parent), which keeps results
# byte-identical to a serial run.

#: One simulation request: (os_name, workload, duration_ns, seed).
#: ``duration_ns=None`` uses the workload's own default length (the
#: Figure 1 desktop trace is always 90 s).
TraceJob = Tuple[str, str, Optional[int], int]


def _run_trace_job(job: TraceJob) -> bytes:
    os_name, workload, duration_ns, seed = job
    from . import run_workload          # registry lives in the package
    from ..tracing.binfmt import dumps
    run = run_workload(os_name, workload, duration_ns, seed=seed)
    return dumps(run.trace)


def _run_serial(jobs: Sequence[TraceJob]) -> list[Trace]:
    from . import run_workload
    return [run_workload(o, w, d, seed=s).trace for o, w, d, s in jobs]


def run_study_traces(jobs: Iterable[TraceJob], *,
                     processes: Optional[int] = None) -> list[Trace]:
    """Run many workload simulations, in parallel where possible.

    Returns the traces in job order.  ``processes=None`` uses one
    worker per CPU (capped at the job count); ``processes=1`` runs
    serially in-process.  Determinism: every simulation is seeded, so
    the returned traces are byte-identical to a serial run regardless
    of worker count, and environments without working
    ``multiprocessing`` silently fall back to serial execution.
    """
    jobs = list(jobs)
    if processes is None or processes <= 0:
        processes = os.cpu_count() or 1
    processes = min(processes, len(jobs))
    if processes <= 1:
        return _run_serial(jobs)
    from ..tracing.binfmt import loads
    try:
        with multiprocessing.get_context().Pool(processes) as pool:
            blobs = pool.map(_run_trace_job, jobs)
    except (ImportError, OSError, PermissionError):
        # Sandboxed/embedded interpreters without fork or semaphores.
        return _run_serial(jobs)
    return [loads(blob) for blob in blobs]
