"""Workload harness: assembling machines, running them, bundling traces.

The paper's four workloads (Idle, Skype, Firefox, Webserver) each ran
for exactly 30 minutes on both systems.  Runs here default to a shorter
window (the event streams scale linearly; see EXPERIMENTS.md) and can
be run at full paper length with ``duration_ns=PAPER_DURATION_NS``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..sim.clock import MINUTE
from ..linuxkern.kernel import LinuxKernel
from ..linuxkern.syscalls import SyscallInterface
from ..tracing.trace import Trace
from ..vistakern.dispatcher import DispatcherWaits
from ..vistakern.ktimer import VistaKernel
from ..vistakern.ntapi import NtTimerApi
from ..vistakern.win32 import WaitableTimers
from ..vistakern.winsock import Winsock

#: The paper's trace length.
PAPER_DURATION_NS = 30 * MINUTE
#: Default for benchmarks: long enough for 7 decades of timeout values
#: to show their behaviour, short enough to iterate on.
DEFAULT_DURATION_NS = 5 * MINUTE


@dataclass
class WorkloadRun:
    """Everything produced by one workload execution."""

    trace: Trace
    kernel: object            #: LinuxKernel or VistaKernel
    components: dict = field(default_factory=dict)

    @property
    def duration_ns(self) -> int:
        return self.trace.duration_ns


class LinuxMachine:
    """A Linux box with its syscall layer, ready for apps."""

    def __init__(self, *, seed: int = 0):
        self.kernel = LinuxKernel(seed=seed)
        self.syscalls = SyscallInterface(self.kernel)
        self.rng = self.kernel.rng

    def finish(self, workload: str, duration_ns: int) -> WorkloadRun:
        self.kernel.run_for(duration_ns)
        trace = Trace(os_name="linux", workload=workload,
                      duration_ns=duration_ns,
                      events=list(self.kernel.sink))
        return WorkloadRun(trace, self.kernel)


class VistaMachine:
    """A Vista box with every timer surface instantiated."""

    def __init__(self, *, seed: int = 0):
        self.kernel = VistaKernel(seed=seed)
        self.waits = DispatcherWaits(self.kernel)
        self.ntapi = NtTimerApi(self.kernel)
        self.waitable = WaitableTimers(self.ntapi)
        self.winsock = Winsock(self.kernel)
        self.rng = self.kernel.rng

    def finish(self, workload: str, duration_ns: int) -> WorkloadRun:
        self.kernel.run_for(duration_ns)
        trace = Trace(os_name="vista", workload=workload,
                      duration_ns=duration_ns,
                      events=list(self.kernel.sink))
        return WorkloadRun(trace, self.kernel)
