"""Workload harness: running machines, bundling traces, study driver.

The paper's four workloads (Idle, Skype, Firefox, Webserver) each ran
for exactly 30 minutes on both systems.  Runs here default to a shorter
window (the event streams scale linearly; see EXPERIMENTS.md) and can
be run at full paper length with ``duration_ns=PAPER_DURATION_NS``.

The machine harness itself lives in :mod:`repro.kern`: one generic
:class:`~repro.kern.machine.Machine` resolves any registered backend
(the old per-OS machine pair is gone).  This
module keeps the names importable from their historical home and adds
the parallel study driver.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
from typing import Iterable, Optional, Sequence, Tuple

from ..kern.machine import (DEFAULT_DURATION_NS, PAPER_DURATION_NS,
                            Machine, WorkloadRun)

__all__ = [
    "DEFAULT_DURATION_NS", "PAPER_DURATION_NS", "Machine", "TraceJob",
    "WorkloadRun", "run_cluster_workload", "run_study_traces",
]


def run_cluster_workload(os_name, workload: str, duration_ns=None, *,
                         hosts: int, cpus: int = 1, seed: int = 0,
                         sinks=None, retain_events: bool = True):
    """Run a registered scene on an N-host cluster sharing one clock.

    The multi-host counterpart of :func:`repro.workloads.run_workload`:
    ``workload`` must be a *scene* (``idle``, ``webserver``,
    ``serverfarm`` — the baselines that build from a machine), because
    a cluster assembles the same scene on every host; scripted per-OS
    runners like ``skype``/``firefox`` drive one machine imperatively
    and have no cluster form.  ``os_name`` may also be a sequence of
    backend names, one per host, for a mixed fleet.

    Returns a :class:`repro.kern.cluster.ClusterRun` whose ``trace``
    is the merged multi-host timeline (every event stamped with
    ``host``/``cpu``).
    """
    from ..kern.cluster import Cluster
    from ..kern.registry import scene_names
    names = [os_name] * hosts if isinstance(os_name, str) else list(os_name)
    for name in names:
        scenes = scene_names(name)
        if workload not in scenes:
            raise KeyError(
                f"workload {workload!r} has no cluster form on "
                f"{name!r}; multi-host runs need a registered scene: "
                f"{sorted(scenes)}")
    cluster = Cluster(names, seed=seed, cpus=cpus, sinks=sinks,
                      retain_events=retain_events)
    cluster.scene(workload)
    if duration_ns is None:
        duration_ns = DEFAULT_DURATION_NS
    return cluster.finish(workload, duration_ns)


# -- parallel study driver ----------------------------------------------
#
# One study is eight-plus independent simulations; each is
# deterministic in (os, workload, duration, seed), so they parallelise
# perfectly.  Workers return the trace as compact columnar v2 bytes
# (the relayfs trick again: fixed-stride binary columns cross the
# process boundary, text rendering stays in the parent), which keeps
# results byte-identical to a serial run.

#: One simulation request: (os_name, workload, duration_ns, seed).
#: ``duration_ns=None`` uses the workload's own default length (the
#: Figure 1 desktop trace is always 90 s).  Two optional trailing
#: fields extend a job to a cluster request: (..., hosts, cpus) —
#: ``hosts > 1`` routes through :func:`run_cluster_workload` (the
#: workload must be a registered scene), ``cpus > 1`` runs the
#: engine on the per-CPU sharded wheel (trace bytes are identical at
#: any CPU count, so this is purely a topology/scaling knob).
TraceJob = Tuple[str, str, Optional[int], int]


def _finish_sinks(sinks, duration_ns: int) -> None:
    """Finalise any attached reducers (sinks with a ``finish`` method)
    in the process that ran the simulation, so what crosses the process
    boundary is plain result dataclasses, not live aggregation state."""
    for sink in sinks or ():
        finish = getattr(sink, "finish", None)
        if finish is not None:
            finish(duration_ns)


def _run_one(job: TraceJob, sink_factory, retain_events: bool,
             collect_metrics: bool):
    os_name, workload, duration_ns, seed = job[:4]
    hosts = job[4] if len(job) > 4 else 1
    cpus = job[5] if len(job) > 5 else 1
    from . import run_workload          # registry lives in the package
    sinks = list(sink_factory(os_name, workload)) if sink_factory else None
    if hosts > 1:
        run = run_cluster_workload(os_name, workload, duration_ns,
                                   hosts=hosts, cpus=cpus, seed=seed,
                                   sinks=sinks,
                                   retain_events=retain_events)
    elif cpus > 1:
        from ..sim.sched import use_scheduler
        with use_scheduler(f"sharded:{cpus}"):
            run = run_workload(os_name, workload, duration_ns,
                               seed=seed, sinks=sinks,
                               retain_events=retain_events)
    else:
        run = run_workload(os_name, workload, duration_ns, seed=seed,
                           sinks=sinks, retain_events=retain_events)
    _finish_sinks(sinks, run.trace.duration_ns)
    # The snapshot is taken in the process that owns the kernel (the
    # kernel itself never crosses the pool boundary) — collection is
    # pull-only, so the trace bytes are unaffected.
    snapshot = run.metrics(sinks=sinks or ()) if collect_metrics else None
    return run.trace, sinks, snapshot


def _run_trace_job(job: TraceJob, sink_factory=None,
                   retain_events: bool = True,
                   collect_metrics: bool = False) -> Tuple[bytes, object,
                                                           object]:
    from ..tracing.formats import trace_to_bytes
    trace, sinks, snapshot = _run_one(job, sink_factory, retain_events,
                                      collect_metrics)
    return trace_to_bytes(trace), sinks, snapshot


def _assemble(results: list, sink_factory, collect_metrics: bool) -> list:
    if sink_factory is None and not collect_metrics:
        return [trace for trace, _, _ in results]
    if sink_factory is None:
        return [(trace, snapshot) for trace, _, snapshot in results]
    if not collect_metrics:
        return [(trace, sinks) for trace, sinks, _ in results]
    return results


def _run_serial(jobs: Sequence[TraceJob], sink_factory,
                retain_events: bool, collect_metrics: bool) -> list:
    results = [_run_one(job, sink_factory, retain_events, collect_metrics)
               for job in jobs]
    return _assemble(results, sink_factory, collect_metrics)


def run_study_traces(jobs: Iterable[TraceJob], *,
                     processes: Optional[int] = None,
                     sink_factory=None,
                     retain_events: bool = True,
                     collect_metrics: bool = False) -> list:
    """Run many workload simulations, in parallel where possible.

    Returns the traces in job order.  ``processes=None`` uses one
    worker per CPU (capped at the job count); ``processes=1`` runs
    serially in-process.  Determinism: every simulation is seeded, so
    the returned traces are byte-identical to a serial run regardless
    of worker count, and environments without working
    ``multiprocessing`` silently fall back to serial execution.

    ``sink_factory(os_name, workload)`` — when given — builds fresh
    live sinks per job (e.g. a :class:`repro.core.streaming
    .StreamingSuite`); they are attached to the machine, finalised with
    the trace duration inside the worker, and returned alongside the
    trace, so the result is ``list[(Trace, list[sink])]`` instead of
    ``list[Trace]``.  With ``retain_events=False`` the traces come back
    empty (events are seen only by the sinks), keeping worker memory
    bounded.  A picklable module-level factory is required for the
    parallel path.

    ``collect_metrics=True`` appends each run's
    :class:`~repro.obs.metrics.MetricsSnapshot` (collected inside the
    worker, since the kernel never crosses the process boundary) as the
    final element of every result tuple: ``(Trace, snapshot)`` or
    ``(Trace, sinks, snapshot)``.  Collection is pull-only, so the
    traces stay byte-identical to a metrics-off run.
    """
    jobs = list(jobs)
    if processes is None or processes <= 0:
        processes = os.cpu_count() or 1
    processes = min(processes, len(jobs))
    if processes <= 1:
        return _run_serial(jobs, sink_factory, retain_events,
                           collect_metrics)
    from functools import partial
    from ..tracing.formats import materialize, trace_from_bytes
    worker = partial(_run_trace_job, sink_factory=sink_factory,
                     retain_events=retain_events,
                     collect_metrics=collect_metrics)
    try:
        with multiprocessing.get_context().Pool(processes) as pool:
            blobs = pool.map(worker, jobs)
    except (ImportError, OSError, PermissionError, AttributeError,
            TypeError, pickle.PicklingError):
        # Sandboxed/embedded interpreters without fork or semaphores,
        # or an unpicklable factory/sink: fall back to serial.
        return _run_serial(jobs, sink_factory, retain_events,
                           collect_metrics)
    results = [(materialize(trace_from_bytes(blob)), sinks, snapshot)
               for blob, sinks, snapshot in blobs]
    return _assemble(results, sink_factory, collect_metrics)
