"""The Firefox workload: displaying a Flash/JavaScript-heavy page
(myspace.com) with no user input (Section 3.5).

The Linux trace's signature is the flood of 1–3 jiffy (4/8/12 ms)
poll/select timeouts — 1.4M sets over 30 minutes, >80% cancelled —
which the paper attributes to soft-realtime Flash animation over a
best-effort kernel.  On Vista the same page produces 2881 sets/s, many
below 10 ms, via waits and winsock selects.
"""

from __future__ import annotations

from ..sim.clock import jiffies, millis, seconds
from ..linuxkern.subsystems.net import TcpConnection
from .apps import SoftRealtimePoller
from .base import DEFAULT_DURATION_NS, Machine, WorkloadRun
from .vista_apps import BrowserApp


def run_linux_firefox(duration_ns: int = DEFAULT_DURATION_NS, *,
                      seed: int = 0, sinks=None,
                      retain_events: bool = True,
                      event_loop_threads: int = 5) -> WorkloadRun:
    machine = Machine("linux", seed=seed, sinks=sinks,
                      retain_events=retain_events)
    components = machine.scene("idle")

    task = machine.kernel.tasks.spawn("firefox-bin")
    pollers = []
    # Several in-process event loops (main, Flash plugin instances,
    # timer thread) all polling fds with jiffy-scale timeouts.
    cycles = (
        [jiffies(1), jiffies(2), jiffies(3)],
        [jiffies(1), jiffies(1), jiffies(2)],
        [jiffies(2), jiffies(3)],
        [jiffies(1), jiffies(3), jiffies(2), jiffies(1)],
        [jiffies(3), jiffies(2), jiffies(1)],
    )
    for i in range(event_loop_threads):
        poller = SoftRealtimePoller(
            machine, "firefox-bin", task=task, thread=i,
            timeout_cycle=cycles[i % len(cycles)],
            cancel_probability=0.82, think_ns=250_000)
        poller.start()
        pollers.append(poller)
    components["pollers"] = pollers

    # Page content streams: periodic fetches of Flash/ad elements.
    tcp = components["tcp"]
    rng = machine.rng.stream("firefox.net")

    def fetch() -> None:
        TcpConnection(tcp, server_side=False,
                      segments=1 + rng.randrange(3)).start()
        machine.kernel.engine.call_after(
            max(1, int(rng.exponential(seconds(4)))), fetch)

    machine.kernel.engine.call_after(millis(300), fetch)
    return machine.finish("firefox", duration_ns)


def run_vista_firefox(duration_ns: int = DEFAULT_DURATION_NS, *,
                      seed: int = 0, sinks=None,
                      retain_events: bool = True) -> WorkloadRun:
    machine = Machine("vista", seed=seed, sinks=sinks,
                      retain_events=retain_events)
    components = machine.scene("idle")
    browser = BrowserApp(machine, "firefox.exe", flash=True,
                         select_rate_hz=40.0)
    browser.start()
    components["browser"] = browser
    return machine.finish("firefox", duration_ns)
