"""Application behaviour models (Linux side).

Each class reproduces the *timer idiom* the paper traced for one class
of application:

* :class:`SelectCountdownApp` — the X.org / icewm idiom of Figure 4: a
  constant select timeout that Linux counts down across fd-activity
  wakeups until it reaches zero, then is reset.
* :class:`SoftRealtimePoller` — the Firefox/Flash and Skype pattern:
  very short (1–3 jiffy) poll/select timeouts in a tight loop,
  mostly cancelled by fd activity — the paper's conjectured attempt to
  build a soft-realtime environment over a best-effort kernel.
* :class:`FixedIntervalDaemon` — cron/atd-style "sleep a round number
  and do work" loops (the delay pattern).
* :class:`ApacheServer` + :class:`HttperfDriver` — the webserver
  workload: a 1 s event loop, 15 s per-connection guards re-armed
  back-to-back under load (watchdog), and the kernel TCP/socket timers
  through :class:`~repro.linuxkern.subsystems.net.TcpStack`.
* :class:`SkypeApp` — the measured mix of 0 / 0.4999 / 0.5 s constants
  plus irregular short adaptive polls.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..sim.clock import MILLISECOND, SECOND, millis
from ..sim.tasks import Task
from ..linuxkern.subsystems.net import TcpConnection, TcpStack
from ..linuxkern.syscalls import WakeReason
from .base import Machine


class SelectCountdownApp:
    """X server / window-manager select loop (Figure 4's sawtooth).

    The app computes a deadline (e.g. the screensaver) once, then calls
    select with the *remaining* time after every fd-driven wakeup —
    Linux updates the timeout argument in place — until it reaches
    zero, at which point housekeeping runs and the full value is set
    again.
    """

    def __init__(self, machine: Machine, comm: str, *,
                 nominal_timeout_ns: int, activity_mean_ns: int):
        self.machine = machine
        self.task = machine.kernel.tasks.spawn(comm)
        self.nominal_timeout_ns = nominal_timeout_ns
        self.activity_mean_ns = activity_mean_ns
        self.rng = machine.rng.stream(f"app.{comm}.{self.task.pid}")
        self.remaining_ns = nominal_timeout_ns
        self.resets = 0
        self._call = None

    def start(self) -> None:
        self._select()
        self._schedule_activity()

    def _select(self) -> None:
        self._call = self.machine.syscalls.select(
            self.task, self.remaining_ns, self._returned)

    def _returned(self, reason: WakeReason, remaining_ns: int) -> None:
        if reason == WakeReason.TIMEOUT:
            self.resets += 1
            self.remaining_ns = self.nominal_timeout_ns
        else:
            self.remaining_ns = remaining_ns
            if self.remaining_ns <= 0:
                self.resets += 1
                self.remaining_ns = self.nominal_timeout_ns
        self._select()

    def _schedule_activity(self) -> None:
        delay = max(1, int(self.rng.exponential(self.activity_mean_ns)))
        self.machine.kernel.engine.call_after(delay, self._activity)

    def _activity(self) -> None:
        if self._call is not None and not self._call.done:
            self._call.fd_ready()
        self._schedule_activity()


class SoftRealtimePoller:
    """Tight poll/select loop with jiffy-scale timeouts.

    ``timeout_cycle`` is the sequence of timeout values the loop
    rotates through (Firefox polls fds at 4, 8, 12 ms; Flash frames).
    ``cancel_probability`` is the chance fd activity completes a call
    before its timeout — the paper's Firefox trace cancels ~80% of its
    1.4M sets.
    """

    def __init__(self, machine: Machine, comm: str, *,
                 timeout_cycle: Sequence[int],
                 cancel_probability: float = 0.8,
                 think_ns: int = 500_000,
                 use_poll: bool = True,
                 task: Optional[Task] = None,
                 thread: int = 0):
        self.machine = machine
        self.task = task if task is not None \
            else machine.kernel.tasks.spawn(comm)
        self.timeout_cycle = list(timeout_cycle)
        self.cancel_probability = cancel_probability
        self.think_ns = think_ns
        self.use_poll = use_poll
        self.thread = thread
        self.rng = machine.rng.stream(
            f"app.{comm}.{self.task.pid}.poller{thread}")
        self._index = 0
        self.iterations = 0

    def start(self) -> None:
        self._iterate()

    def _iterate(self) -> None:
        self.iterations += 1
        timeout = self.timeout_cycle[self._index % len(self.timeout_cycle)]
        self._index += 1
        syscall = self.machine.syscalls.poll if self.use_poll \
            else self.machine.syscalls.select
        call = syscall(self.task, timeout, self._returned,
                       thread=self.thread)
        if timeout > 0 and not call.done \
                and self.rng.random() < self.cancel_probability:
            # fd becomes ready at a uniformly random point of the wait.
            at = int(timeout * self.rng.random())
            self.machine.kernel.engine.call_after(at, self._fd_ready, call)

    def _fd_ready(self, call) -> None:
        call.fd_ready()

    def _returned(self, reason: WakeReason, _remaining: int) -> None:
        think = max(0, int(self.rng.exponential(self.think_ns)))
        self.machine.kernel.engine.call_after(think, self._iterate)


class FixedIntervalDaemon:
    """cron/atd-style loop: sleep a fixed round interval, do work.

    Produces the *delay* pattern: the timer always expires, and is
    re-set to the same value after the (non-trivial) work interval.
    """

    def __init__(self, machine: Machine, comm: str, *,
                 interval_ns: int, work_ns: int = 20 * MILLISECOND,
                 use_select: bool = False):
        self.machine = machine
        self.task = machine.kernel.tasks.spawn(comm)
        self.interval_ns = interval_ns
        self.work_ns = work_ns
        self.use_select = use_select
        self.cycles = 0

    def start(self) -> None:
        self._sleep()

    def _sleep(self) -> None:
        syscall = self.machine.syscalls.select if self.use_select \
            else self.machine.syscalls.nanosleep
        syscall(self.task, self.interval_ns, self._wake)

    def _wake(self, _reason: WakeReason, _remaining: int) -> None:
        self.cycles += 1
        self.machine.kernel.engine.call_after(self.work_ns, self._sleep)


class SkypeApp:
    """Skype's measured Linux mix (Figure 6): constants 0, 0.4999 and
    0.5 s, plus irregular short adaptive poll values (0.052, 0.1, ...)
    from its jitter buffer."""

    SIGNALING_VALUES = (millis(500), millis(499.9), 0)

    def __init__(self, machine: Machine, *,
                 frame_ns: int = millis(20), audio_threads: int = 3):
        self.machine = machine
        self.task = machine.kernel.tasks.spawn("skype")
        self.rng = machine.rng.stream("app.skype")
        self.frame_ns = frame_ns
        # Audio path: poll(0) + short irregular adaptive waits, one
        # loop per media thread (capture, playback, jitter buffer).
        self.audio = [
            SoftRealtimePoller(
                machine, "skype", task=self.task, thread=i,
                timeout_cycle=[0, millis(52), 0, millis(100), millis(48),
                               0, millis(52), millis(24)],
                cancel_probability=0.78, think_ns=int(frame_ns * 0.25))
            for i in range(audio_threads)]
        self._signal_index = 0

    def start(self) -> None:
        for poller in self.audio:
            poller.start()
        self._signaling()

    def _signaling(self) -> None:
        value = self.SIGNALING_VALUES[
            self._signal_index % len(self.SIGNALING_VALUES)]
        self._signal_index += 1
        call = self.machine.syscalls.select(self.task, value,
                                            self._signal_returned,
                                            thread=100)
        if value > 0 and not call.done and self.rng.random() < 0.92:
            # Media/control packets arrive every few tens of ms, so the
            # half-second timeouts are nearly always cancelled early.
            at = max(1, int(self.rng.exponential(millis(45))))
            if at < value:
                self.machine.kernel.engine.call_after(
                    at, lambda c=call: c.fd_ready())

    def _signal_returned(self, _reason: WakeReason,
                         _remaining: int) -> None:
        self.machine.kernel.engine.call_after(
            max(1, int(self.rng.exponential(millis(3)))), self._signaling)


class ApacheServer:
    """Apache 2.2 over the TCP stack: event loop + connection guards."""

    EVENT_LOOP_TIMEOUT_NS = SECOND
    SOCKET_POLL_TIMEOUT_NS = 15 * SECOND

    def __init__(self, machine: Machine, tcp: TcpStack, *,
                 children: int = 10):
        self.machine = machine
        self.tcp = tcp
        self.task = machine.kernel.tasks.spawn("apache2")
        self.children = [machine.kernel.tasks.spawn("apache2")
                         for _ in range(children)]
        self.rng = machine.rng.stream("app.apache")
        self._event_call = None
        self.connections_served = 0
        self._free_children = list(self.children)

    def start(self) -> None:
        self._event_loop()

    # -- master event loop: 1 s select, cancelled by incoming work ------

    def _event_loop(self) -> None:
        self._event_call = self.machine.syscalls.select(
            self.task, self.EVENT_LOOP_TIMEOUT_NS, self._event_returned)

    def _event_returned(self, _reason: WakeReason,
                        _remaining: int) -> None:
        self.machine.kernel.engine.call_after(
            max(1, int(self.rng.exponential(millis(1)))), self._event_loop)

    # -- connection handling ---------------------------------------------

    def accept_connection(self) -> bool:
        """A client connection arrives (driven by HttperfDriver)."""
        if self._event_call is not None and not self._event_call.done:
            self._event_call.fd_ready()
        if not self._free_children:
            return False
        child = self._free_children.pop()
        conn = TcpConnection(self.tcp, server_side=True, segments=1,
                             on_close=lambda: self._closed(child))
        conn.start()
        self._guard_connection(child, conn)
        return True

    def _guard_connection(self, child: Task, conn: TcpConnection) -> None:
        call = self.machine.syscalls.poll(
            child, self.SOCKET_POLL_TIMEOUT_NS, lambda reason, rem: None)
        # Request data arrives promptly; the guard is cancelled and, if
        # the connection continues, immediately re-armed (back-to-back
        # under load: the watchdog signature).
        arrival = max(1, int(self.rng.exponential(millis(3))))
        self.machine.kernel.engine.call_after(
            arrival, self._request_arrived, child, conn, call)

    def _request_arrived(self, child: Task, conn: TcpConnection,
                         call) -> None:
        if not call.done:
            call.fd_ready()
        if not conn.closed and self.rng.random() < 0.6:
            self._guard_connection(child, conn)

    def _closed(self, child: Task) -> None:
        self.connections_served += 1
        self._free_children.append(child)


class HttperfDriver:
    """The httperf load generator on the client machine.

    Its own timers run elsewhere and are invisible to the traced
    server, exactly as in the paper's setup; it only drives connection
    arrivals at the configured rate with the 10-way parallelism bursts
    httperf produces.
    """

    def __init__(self, machine: Machine, server: ApacheServer, *,
                 connections_per_second: float = 16.7,
                 burst_size: int = 10):
        self.machine = machine
        self.server = server
        self.rng = machine.rng.stream("driver.httperf")
        self.mean_gap_ns = int(burst_size * SECOND
                               / connections_per_second)
        self.burst_size = burst_size
        self.offered = 0

    def start(self) -> None:
        self._schedule_burst()

    def _schedule_burst(self) -> None:
        gap = max(1, int(self.rng.exponential(self.mean_gap_ns)))
        self.machine.kernel.engine.call_after(gap, self._burst)

    def _burst(self) -> None:
        for i in range(self.burst_size):
            # Connections within a burst land back to back (~0.5 ms).
            offset = int(i * 500_000 * (0.5 + self.rng.random()))
            self.machine.kernel.engine.call_after(
                offset, self._one_connection)
        self._schedule_burst()

    def _one_connection(self) -> None:
        self.offered += 1
        self.server.accept_connection()
