"""The Section 2.2.2 layering scenario, made executable.

A user types a server name into the file browser.  Name lookups go out
in parallel (WINS, DNS, mDNS), each with its own retry schedule; on
success, connects are attempted in parallel over SMB, NFS and WebDAV —
NFS over SunRPC responding to refused connections with an exponential
backoff that retries 7 times doubling the initial 500 ms timeout.
"Thus, recovering from a typing error can take over a minute!" — while
a healthy response arrives shortly after the 130 ms round-trip time.

:func:`browse` simulates the full timeline; the provenance-aware
variant collapses the layered stack into a single end-to-end adaptive
timeout derived from observed RTT (Sections 5.1/5.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..sim.clock import SECOND, millis, seconds
from ..sim.engine import Engine

#: Per-protocol retry schedules (initial timeout, retries, backoff).
NAME_PROVIDERS = {
    "WINS": (millis(1500), 3, 1.0),
    "DNS": (SECOND, 3, 2.0),
    "mDNS": (seconds(3), 1, 1.0),
}
CONNECT_PROTOCOLS = {
    "SMB": (seconds(3), 3, 2.0),           # TCP SYN retries 3/6/12 s
    "NFS/SunRPC": (millis(500), 7, 2.0),   # the paper's 7x doubling
    "WebDAV": (seconds(30), 1, 1.0),
}


def schedule_total_ns(initial_ns: int, retries: int,
                      backoff: float) -> int:
    """Worst-case time for one protocol to give up."""
    total = 0.0
    value = float(initial_ns)
    for _ in range(retries):
        total += value
        value *= backoff
    return int(total)


@dataclass
class BrowseResult:
    """Outcome of one file-browser interaction."""

    outcome: str                  #: "connected" | "name-error" | "unreachable"
    elapsed_ns: int
    timeline: list[tuple[int, str]] = field(default_factory=list)

    @property
    def elapsed_seconds(self) -> float:
        return self.elapsed_ns / SECOND


def browse(*, name_resolves: bool, server_reachable: bool,
           rtt_ns: int = millis(130),
           engine: Optional[Engine] = None,
           tracker=None) -> BrowseResult:
    """Simulate the stock layered behaviour.

    ``tracker`` (a :class:`repro.tracing.requests.RequestTracker`)
    optionally records the request's full timeout tree — the
    Section 5.2 provenance that makes the Section 2.2.2 pathology
    visible.
    """
    engine = engine if engine is not None else Engine()
    start = engine.now
    timeline: list[tuple[int, str]] = []
    state = {"phase": "lookup", "pending": set(NAME_PROVIDERS),
             "done": None}
    request = tracker.begin("open \\\\server", now_ns=start) \
        if tracker is not None else None
    nodes: dict[str, object] = {}

    def annotate(name: str, layer: str, initial: int, retries: int,
                 backoff: float) -> None:
        if tracker is None:
            return
        total = schedule_total_ns(initial, retries, backoff)
        parent = tracker.arm(request, name, layer, total,
                             now_ns=engine.now)
        nodes[name] = parent
        value = float(initial)
        for attempt in range(retries):
            tracker.arm(request, f"{name}#try{attempt + 1}", layer,
                        int(value), now_ns=engine.now, parent=parent)
            value *= backoff

    def resolve_node(name: str, outcome: str) -> None:
        if tracker is not None and name in nodes:
            nodes[name].resolve(outcome, engine.now)

    def finish(outcome: str) -> None:
        if state["done"] is None:
            state["done"] = (outcome, engine.now - start)
            timeline.append((engine.now - start, f"report: {outcome}"))
            if request is not None:
                request.finish(outcome, engine.now)

    # -- phase 1: parallel name lookup -------------------------------------

    def provider_failed(name: str) -> None:
        timeline.append((engine.now - start, f"{name} lookup failed"))
        resolve_node(name, "expired")
        state["pending"].discard(name)
        if not state["pending"] and state["phase"] == "lookup":
            finish("name-error")

    def provider_succeeded(name: str) -> None:
        if state["phase"] != "lookup":
            return
        timeline.append((engine.now - start, f"{name} resolved"))
        resolve_node(name, "cancelled")
        state["phase"] = "connect"
        start_connects()

    for name, (initial, retries, backoff) in NAME_PROVIDERS.items():
        annotate(name, "resolver", initial, retries, backoff)
        if name_resolves:
            engine.call_after(rtt_ns, provider_succeeded, name)
        else:
            engine.call_after(schedule_total_ns(initial, retries, backoff),
                              provider_failed, name)

    # -- phase 2: parallel connects ----------------------------------------

    def start_connects() -> None:
        state["pending"] = set(CONNECT_PROTOCOLS)
        for proto, (initial, retries, backoff) in \
                CONNECT_PROTOCOLS.items():
            annotate(proto, "transport", initial, retries, backoff)
            if server_reachable:
                engine.call_after(rtt_ns, connect_succeeded, proto)
            else:
                engine.call_after(
                    schedule_total_ns(initial, retries, backoff),
                    connect_failed, proto)

    def connect_failed(proto: str) -> None:
        timeline.append((engine.now - start, f"{proto} gave up"))
        resolve_node(proto, "expired")
        state["pending"].discard(proto)
        if not state["pending"] and state["phase"] == "connect":
            finish("unreachable")

    def connect_succeeded(proto: str) -> None:
        if state["phase"] != "connect" or state["done"]:
            return
        timeline.append((engine.now - start, f"{proto} connected"))
        resolve_node(proto, "cancelled")
        finish("connected")

    engine.run()
    outcome, elapsed = state["done"]
    return BrowseResult(outcome, elapsed, timeline)


def browse_adaptive(*, name_resolves: bool, server_reachable: bool,
                    rtt_ns: int = millis(130),
                    confidence_factor: float = 4.0) -> BrowseResult:
    """The provenance-aware alternative.

    With timer provenance the browser knows the whole stack is waiting
    on one network round-trip, and with a learned RTT distribution it
    can time each phase out at a small multiple of the observed RTT
    instead of the layered worst-case product.
    """
    phase_timeout = int(rtt_ns * confidence_factor)
    timeline: list[tuple[int, str]] = []
    elapsed = 0
    if name_resolves:
        elapsed += rtt_ns
        timeline.append((elapsed, "name resolved"))
    else:
        elapsed += phase_timeout
        timeline.append((elapsed, "report: name-error"))
        return BrowseResult("name-error", elapsed, timeline)
    if server_reachable:
        elapsed += rtt_ns
        timeline.append((elapsed, "connected"))
        return BrowseResult("connected", elapsed, timeline)
    elapsed += phase_timeout
    timeline.append((elapsed, "report: unreachable"))
    return BrowseResult("unreachable", elapsed, timeline)
