"""Workload models reproducing the paper's traced scenarios."""

from .apps import (ApacheServer, FixedIntervalDaemon, HttperfDriver,
                   SelectCountdownApp, SkypeApp, SoftRealtimePoller)
from .base import (DEFAULT_DURATION_NS, PAPER_DURATION_NS, LinuxMachine,
                   TraceJob, VistaMachine, WorkloadRun,
                   run_study_traces)
from .desktop_vista import FIGURE1_DURATION_NS, run_vista_desktop
from .filebrowser import (BrowseResult, browse, browse_adaptive,
                          schedule_total_ns)
from .firefox import run_linux_firefox, run_vista_firefox
from .idle import run_linux_idle, run_vista_idle
from .skype import run_linux_skype, run_vista_skype
from .vista_apps import (BrowserApp, OutlookApp, SkypeVistaApp,
                         VistaBackgroundProcess, VistaKernelBackground)
from .webserver import run_linux_webserver, run_vista_webserver

#: Registry used by the CLI and the benchmarks.
LINUX_WORKLOADS = {
    "idle": run_linux_idle,
    "skype": run_linux_skype,
    "firefox": run_linux_firefox,
    "webserver": run_linux_webserver,
}
VISTA_WORKLOADS = {
    "idle": run_vista_idle,
    "skype": run_vista_skype,
    "firefox": run_vista_firefox,
    "webserver": run_vista_webserver,
    "desktop": run_vista_desktop,
}


def run_workload(os_name: str, workload: str, duration_ns=None, *,
                 seed: int = 0, sinks=None,
                 retain_events: bool = True) -> WorkloadRun:
    """Run one of the paper's workloads by name.

    ``sinks`` attaches live sinks (e.g. streaming reducers) to the
    machine for the whole run; ``retain_events=False`` drops the trace
    buffer so only the sinks see the stream (bounded memory).
    """
    registry = LINUX_WORKLOADS if os_name == "linux" else VISTA_WORKLOADS
    if workload not in registry:
        raise KeyError(f"unknown {os_name} workload {workload!r}; "
                       f"choose from {sorted(registry)}")
    runner = registry[workload]
    kwargs = dict(seed=seed, sinks=sinks, retain_events=retain_events)
    if duration_ns is None:
        return runner(**kwargs)
    return runner(duration_ns, **kwargs)


__all__ = [name for name in dir() if not name.startswith("_")]
