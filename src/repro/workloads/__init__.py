"""Workload models reproducing the paper's traced scenarios."""

from ..kern.registry import backend_names
from .apps import (ApacheServer, FixedIntervalDaemon, HttperfDriver,
                   SelectCountdownApp, SkypeApp, SoftRealtimePoller)
from .base import (DEFAULT_DURATION_NS, PAPER_DURATION_NS, Machine,
                   TraceJob, WorkloadRun, run_cluster_workload,
                   run_study_traces)
from .desktop_vista import FIGURE1_DURATION_NS, run_vista_desktop
from .filebrowser import (BrowseResult, browse, browse_adaptive,
                          schedule_total_ns)
from .firefox import run_linux_firefox, run_vista_firefox
from .idle import run_linux_idle, run_vista_idle
from .portable import (PORTABLE_IDLE, PORTABLE_MIX,
                       PORTABLE_SERVERFARM, PORTABLE_WEBSERVER,
                       PORTABLE_WORKLOADS, run_portable)
from .serverfarm import run_linux_serverfarm, run_vista_serverfarm
from .skype import run_linux_skype, run_vista_skype
from .vista_apps import (BrowserApp, OutlookApp, SkypeVistaApp,
                         VistaBackgroundProcess, VistaKernelBackground)
from .webserver import run_linux_webserver, run_vista_webserver

#: One registry for every backend: ``(os_name, workload) -> runner``.
#: The per-OS runner pairs are the paper's workloads; the "portable"
#: entries are one OS-neutral definition expanded per backend.
WORKLOADS = {
    ("linux", "idle"): run_linux_idle,
    ("linux", "skype"): run_linux_skype,
    ("linux", "firefox"): run_linux_firefox,
    ("linux", "webserver"): run_linux_webserver,
    ("linux", "serverfarm"): run_linux_serverfarm,
    ("vista", "idle"): run_vista_idle,
    ("vista", "skype"): run_vista_skype,
    ("vista", "firefox"): run_vista_firefox,
    ("vista", "webserver"): run_vista_webserver,
    ("vista", "serverfarm"): run_vista_serverfarm,
    ("vista", "desktop"): run_vista_desktop,
}
for _os_name in ("linux", "vista"):
    WORKLOADS[(_os_name, "portable")] = PORTABLE_MIX.runner(_os_name)


def list_workloads(os_name: str) -> list[str]:
    """Workload names runnable on ``os_name`` (sorted).

    Raises KeyError (listing the registered backends) for an unknown
    backend name.
    """
    names = backend_names()
    if os_name not in names:
        raise KeyError(f"unknown backend {os_name!r}; registered: "
                       f"{list(names)}")
    return sorted(workload for backend, workload in WORKLOADS
                  if backend == os_name)


#: Back-compat views of the unified table.
LINUX_WORKLOADS = {workload: runner for (backend, workload), runner
                   in WORKLOADS.items() if backend == "linux"}
VISTA_WORKLOADS = {workload: runner for (backend, workload), runner
                   in WORKLOADS.items() if backend == "vista"}


def run_workload(os_name: str, workload: str, duration_ns=None, *,
                 seed: int = 0, sinks=None,
                 retain_events: bool = True) -> WorkloadRun:
    """Run one of the paper's workloads by name.

    ``sinks`` attaches live sinks (e.g. streaming reducers) to the
    machine for the whole run; ``retain_events=False`` drops the trace
    buffer so only the sinks see the stream (bounded memory).
    """
    runner = WORKLOADS.get((os_name, workload))
    if runner is None:
        # Distinguish a bad backend from a bad workload name; either
        # way, list only the valid choices for what was asked.
        valid = list_workloads(os_name)   # raises for unknown backends
        raise KeyError(f"unknown {os_name} workload {workload!r}; "
                       f"choose from {valid}")
    kwargs = dict(seed=seed, sinks=sinks, retain_events=retain_events)
    if duration_ns is None:
        return runner(**kwargs)
    return runner(duration_ns, **kwargs)


__all__ = [name for name in dir() if not name.startswith("_")]
