"""The Skype workload: an internet telephony call (Section 3.5)."""

from __future__ import annotations

from ..sim.clock import seconds
from ..linuxkern.subsystems.net import TcpConnection
from .apps import SkypeApp
from .base import DEFAULT_DURATION_NS, Machine, WorkloadRun
from .vista_apps import SkypeVistaApp


def run_linux_skype(duration_ns: int = DEFAULT_DURATION_NS, *,
                    seed: int = 0, sinks=None,
                    retain_events: bool = True) -> WorkloadRun:
    machine = Machine("linux", seed=seed, sinks=sinks,
                      retain_events=retain_events)
    components = machine.scene("idle")
    skype = SkypeApp(machine)
    skype.start()
    components["skype"] = skype

    # The call rides a long-lived relay connection: occasional TCP
    # signaling traffic alongside the UDP media path.
    tcp = components["tcp"]
    rng = machine.rng.stream("skype.relay")

    def relay_burst() -> None:
        TcpConnection(tcp, server_side=False, segments=2).start()
        machine.kernel.engine.call_after(
            max(1, int(rng.exponential(seconds(15)))), relay_burst)

    machine.kernel.engine.call_after(seconds(1), relay_burst)
    return machine.finish("skype", duration_ns)


def run_vista_skype(duration_ns: int = DEFAULT_DURATION_NS, *,
                    seed: int = 0, sinks=None,
                    retain_events: bool = True) -> WorkloadRun:
    machine = Machine("vista", seed=seed, sinks=sinks,
                      retain_events=retain_events)
    components = machine.scene("idle")
    skype = SkypeVistaApp(machine)
    skype.start()
    components["skype"] = skype
    return machine.finish("skype", duration_ns)
