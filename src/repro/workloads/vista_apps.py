"""Application behaviour models (Vista side).

* :class:`VistaKernelBackground` — the drivers and kernel subsystems
  that keep a Vista box setting timers while "idle": one-shot re-armed
  KTIMERs at round periods.
* :class:`VistaBackgroundProcess` — csrss/svchost/tray-app behaviour:
  waits with round timeouts that mostly expire ("more than two timers
  per second" each, Section 4.3).
* :class:`OutlookApp` — the Figure 1 star: ~70 timers/s when idle, with
  bursts up to 7000/s caused by a coding idiom that wraps every UI
  upcall in a 5-second timeout assertion (set + immediate cancel).
* :class:`BrowserApp` — GUI ``SetTimer`` ticks plus winsock selects;
  with ``flash=True`` it adds the sub-10 ms timer flood of the Vista
  Firefox trace (2881 sets/s, many under 10 ms).
* :class:`SkypeVistaApp` — raises the clock resolution via
  ``timeBeginPeriod`` and mixes sub-millisecond waits with 0.5/1/2 s
  constants (Figure 7).
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..sim.clock import MICROSECOND, MILLISECOND, SECOND, millis, seconds
from .base import Machine

SITE_SVCHOST_WAIT = ("svchost!ServiceMainLoop",
                     "kernel32!WaitForSingleObject",
                     "nt!KeWaitForSingleObject")
SITE_OUTLOOK_GUARD = ("outlook!HrWrapUiUpcall", "outlook!SetUpcallGuard",
                      "kernel32!SetWaitableTimer", "nt!KeSetTimer")


class VistaKernelBackground:
    """Kernel/driver timers of an idle Vista machine.

    Each entry is a one-shot KTIMER re-armed from its own DPC (so every
    cycle is a SET + EXPIRE pair, matching Table 2's set ≈ expired).
    """

    DEFAULT_PERIODS = (
        ("nt!PopPolicyTimer", seconds(1)),
        ("nt!CcLazyWriteScan", seconds(1)),
        ("nt!MmWorkingSetManager", seconds(1)),
        ("ndis!NdisMTimerDpc", millis(100)),
        ("usbport!UsbRootHubTimer", millis(250)),
        ("tcpip!TcpPeriodicTimeoutHandler", millis(100)),
        ("nt!KiBalanceSetManagerDeferred", seconds(2)),
        ("nt!ExpTimeRefreshWork", seconds(60)),
        ("hdaudio!HdaPowerTimer", millis(500)),
        ("nt!IopTimerDispatch", seconds(1)),
        # Driver maintenance timers that keep an idle Vista kernel
        # setting timers at the Table 2 rate.
        ("ndis!NdisReceivePoll", millis(50)),
        ("tcpip!TcpDelAckScan", millis(100)),
        ("tcpip!IppTimeout", millis(100)),
        ("afd!AfdTimeoutPoll", millis(100)),
        ("usbport!UsbIsoAdvance", millis(250)),
        ("storport!RaidUnitPendingTimer", millis(250)),
        ("HDAudBus!HdaSyncTimer", millis(250)),
        ("nt!CmpLazyFlushDpc", millis(500)),
        ("nt!KeBalanceSetManager", millis(500)),
        ("i8042prt!I8042WatchdogTimer", millis(500)),
    )

    def __init__(self, machine: Machine, *,
                 periods: Optional[Sequence] = None, copies: int = 1):
        self.machine = machine
        self.entries = []
        chosen = list(periods if periods is not None
                      else self.DEFAULT_PERIODS)
        for copy in range(copies):
            for name, period in chosen:
                self.entries.append((name, period))

    def start(self) -> None:
        kernel = self.machine.kernel
        for name, period in self.entries:
            timer = kernel.alloc_ktimer(
                site=(name, "nt!KeSetTimer"),
                owner=kernel.tasks.kernel, trace_init=True)

            def rearm(kt, period=period, timer=timer):
                kernel.set_timer(timer, period)

            timer.dpc = rearm
            kernel.set_timer(timer, period)


class VistaBackgroundProcess:
    """One background service process: waits that mostly expire."""

    def __init__(self, machine: Machine, comm: str, *,
                 wait_timeouts: Sequence[int] = (seconds(1),),
                 satisfied_probability: float = 0.05,
                 work_ns: int = MILLISECOND, threads: int = 2):
        self.machine = machine
        self.task = machine.kernel.tasks.spawn(comm)
        self.wait_timeouts = list(wait_timeouts)
        self.satisfied_probability = satisfied_probability
        self.work_ns = work_ns
        self.threads = threads
        self.rng = machine.rng.stream(f"vista.{comm}.{self.task.pid}")
        self._index = 0

    def start(self) -> None:
        for thread in range(self.threads):
            # Worker threads idle on service events with staggered,
            # longer timeouts; thread 0 is the main loop.
            if thread == 0:
                self._wait(thread)
            else:
                self.machine.kernel.engine.call_after(
                    1 + self.rng.randrange(thread * 1000),
                    self._wait_worker, thread)
        # Housekeeping via the NTDLL thread pool: its own user-level
        # ring backed by one kernel timer per pool.
        from ..vistakern.threadpool import Threadpool
        pool = Threadpool(self.machine.kernel, self.task)
        period = [seconds(5), seconds(10), seconds(30)][
            self.task.pid % 3]
        maintenance = pool.create_timer(lambda _t: None)
        pool.set_timer(maintenance, period, period_ns=period)

    def _wait(self, thread: int) -> None:
        timeout = self.wait_timeouts[self._index % len(self.wait_timeouts)]
        self._index += 1
        handle = self.machine.waits.wait_for_single_object(
            self.task, timeout, lambda status: self._returned(thread),
            site=SITE_SVCHOST_WAIT, thread=thread)
        if self.rng.random() < self.satisfied_probability:
            at = max(1, int(timeout * self.rng.random()))
            self.machine.kernel.engine.call_after(
                at, lambda h=handle: h.signal())

    def _wait_worker(self, thread: int) -> None:
        def again(_status: int) -> None:
            self.machine.kernel.engine.call_after(
                max(1, int(self.rng.exponential(self.work_ns))),
                self._wait_worker, thread)

        if self.rng.random() < 0.5:
            # Worker parks on its event with no timeout at all; its
            # thread timer exists but is not pending — which is why the
            # paper's Table 2 counts far more timers than its maximum
            # concurrency.
            handle = self.machine.waits.wait_for_single_object(
                self.task, None, again, site=SITE_SVCHOST_WAIT,
                thread=thread)
            delay = max(1, int(self.rng.exponential(seconds(15))))
            self.machine.kernel.engine.call_after(
                delay, lambda h=handle: h.signal())
        else:
            timeout = seconds(10) * (1 + (thread % 3))
            self.machine.waits.wait_for_single_object(
                self.task, timeout, again, site=SITE_SVCHOST_WAIT,
                thread=thread)

    def _returned(self, thread: int) -> None:
        work = max(1, int(self.rng.exponential(self.work_ns)))
        self.machine.kernel.engine.call_after(
            work, self._wait, thread)


class OutlookApp:
    """Outlook: UI ticks plus the upcall-guard burst idiom."""

    GUARD_TIMEOUT_NS = 5 * SECOND

    def __init__(self, machine: Machine, *,
                 baseline_rate_hz: float = 70.0,
                 burst_mean_gap_ns: int = 30 * SECOND,
                 burst_upcalls: int = 2500):
        self.machine = machine
        self.task = machine.kernel.tasks.spawn("outlook.exe")
        self.rng = machine.rng.stream("vista.outlook")
        self.baseline_gap_ns = int(SECOND / baseline_rate_hz)
        self.burst_mean_gap_ns = burst_mean_gap_ns
        self.burst_upcalls = burst_upcalls
        self.bursts = 0

    def start(self) -> None:
        self._baseline()
        self._schedule_burst()

    # Baseline: steady trickle of short waits and UI guards.

    def _baseline(self) -> None:
        # UI thread work arrives at the baseline rate regardless of
        # what the previous iteration did.
        if self.rng.random() < 0.4:
            self._one_guard()
        else:
            self.machine.waits.wait_for_single_object(
                self.task, millis(15.6) * (1 + self.rng.randrange(3)),
                lambda _s: None)
        self.machine.kernel.engine.call_after(
            max(1, int(self.rng.exponential(self.baseline_gap_ns))),
            self._baseline)

    def _one_guard(self) -> None:
        """Wrap one UI upcall in a 5 s timeout assertion.

        A fresh timer object is allocated per guard, as Vista code
        does on the fly; the lookaside list recycles the addresses.
        """
        nt = self.machine.ntapi
        handle = nt.nt_create_timer(self.task, site=SITE_OUTLOOK_GUARD)
        nt.nt_set_timer(handle, self.GUARD_TIMEOUT_NS)
        # The upcall completes quickly; the guard is cancelled.
        upcall = max(10_000, int(self.rng.lognormal_latency(
            300_000, sigma=1.0)))

        def finished() -> None:
            nt.nt_cancel_timer(handle)
            nt.nt_close(handle)

        self.machine.kernel.engine.call_after(upcall, finished)

    # Bursts: thousands of guarded upcalls during mail sync.

    def _schedule_burst(self) -> None:
        gap = max(SECOND, int(self.rng.exponential(self.burst_mean_gap_ns)))
        self.machine.kernel.engine.call_after(gap, self._burst)

    def _burst(self) -> None:
        self.bursts += 1
        count = int(self.burst_upcalls * (0.5 + self.rng.random()))
        spread = SECOND
        for _ in range(count):
            at = int(self.rng.random() * spread)
            self.machine.kernel.engine.call_after(at, self._one_guard)
        self._schedule_burst()


class BrowserApp:
    """A web browser: GUI timers + winsock selects (+ Flash flood)."""

    def __init__(self, machine: Machine, comm: str = "iexplore.exe",
                 *, flash: bool = False, flash_threads: int = 6,
                 select_rate_hz: float = 20.0):
        self.machine = machine
        self.task = machine.kernel.tasks.spawn(comm)
        self.rng = machine.rng.stream(f"vista.{comm}")
        self.flash = flash
        self.flash_threads = flash_threads
        self.select_gap_ns = int(SECOND / select_rate_hz)
        from ..vistakern.win32 import MessageQueue
        self.queue = MessageQueue(machine.kernel, self.task)

    def start(self) -> None:
        # GUI ticks: caret blink (530 ms), progress animation (100 ms).
        self.queue.set_timer(1, millis(530), lambda _tid: None)
        self.queue.set_timer(2, millis(100), lambda _tid: None)
        self._network_select()
        if self.flash:
            self.machine.kernel.request_clock_resolution(
                self.task, MILLISECOND)
            for thread in range(self.flash_threads):
                self._flash_frame(thread)

    def _network_select(self) -> None:
        timeout = self.rng.choice_weighted(
            [millis(1), millis(10), millis(50), millis(250), millis(500)],
            [0.25, 0.3, 0.2, 0.15, 0.1])
        call = self.machine.winsock.select(
            self.task, timeout, lambda _to: None)
        if not call.done and self.rng.random() < 0.6:
            at = max(1, int(timeout * self.rng.random()))
            self.machine.kernel.engine.call_after(
                at, lambda c=call: c.fd_ready())
        self.machine.kernel.engine.call_after(
            max(1, int(self.rng.exponential(self.select_gap_ns))),
            self._network_select)

    def _flash_frame(self, thread: int) -> None:
        """The sub-10 ms timer flood: frame pacing via tiny waits."""
        timeout = self.rng.choice_weighted(
            [300 * MICROSECOND, millis(1), millis(2), millis(5), millis(8)],
            [0.25, 0.3, 0.2, 0.15, 0.1])
        self.machine.waits.wait_for_single_object(
            self.task, timeout,
            lambda _s: self.machine.kernel.engine.call_after(
                max(1, int(self.rng.exponential(100_000))),
                self._flash_frame, thread),
            thread=thread)


#: Kernel timer load while a call is up: NDIS receive pacing, UDP/RTP
#: delivery DPCs, audio DMA — what triples Table 2's kernel column for
#: the Vista Skype trace.
SKYPE_CALL_KERNEL_PERIODS = tuple(
    [(f"ndis!NdisRtpReceiveDpc#{i}", millis(30)) for i in range(6)]
    + [(f"hdaudio!HdaDmaPace#{i}", millis(20)) for i in range(3)]
    + [("tcpip!UdpDeliveryTimer", millis(50)),
       ("tcpip!IppFragmentTimeout", millis(100))])


class SkypeVistaApp:
    """Skype on Vista: high-resolution clock plus mixed wait values."""

    def __init__(self, machine: Machine):
        self.machine = machine
        self.task = machine.kernel.tasks.spawn("Skype.exe")
        self.rng = machine.rng.stream("vista.skype")
        self.call_kernel = VistaKernelBackground(
            machine, periods=SKYPE_CALL_KERNEL_PERIODS)

    AUDIO_THREADS = 3

    def start(self) -> None:
        self.machine.kernel.request_clock_resolution(self.task,
                                                     MILLISECOND)
        self.call_kernel.start()
        for thread in range(self.AUDIO_THREADS):
            self._audio_wait(thread)
        self._signaling_select()

    def _audio_wait(self, thread: int) -> None:
        timeout = self.rng.choice_weighted(
            [500 * MICROSECOND, millis(1), millis(2), millis(3),
             millis(10), millis(20)],
            [0.2, 0.25, 0.2, 0.15, 0.1, 0.1])
        self.machine.waits.wait_for_single_object(
            self.task, timeout,
            lambda _s: self.machine.kernel.engine.call_after(
                max(1, int(self.rng.exponential(200_000))),
                self._audio_wait, thread),
            thread=thread)

    def _signaling_select(self) -> None:
        timeout = self.rng.choice_weighted(
            [0, millis(100), millis(500), SECOND, 2 * SECOND],
            [0.15, 0.2, 0.35, 0.2, 0.1])
        call = self.machine.winsock.select(self.task, timeout,
                                           lambda _to: None)
        if timeout > 0 and not call.done and self.rng.random() < 0.5:
            at = max(1, int(timeout * self.rng.random()))
            self.machine.kernel.engine.call_after(
                at, lambda c=call: c.fd_ready())
        self.machine.kernel.engine.call_after(
            max(1, int(self.rng.exponential(millis(15)))),
            self._signaling_select)
