"""The Figure 1 trace: a typical Vista desktop in active use.

Outlook, Internet Explorer, the system processes and the kernel over a
90-second excerpt.  The kernel sets around a thousand timers per
second, the browser tens, Outlook ~70/s when idle with bursts of up to
7000 set operations in a second from its upcall-guard idiom.
"""

from __future__ import annotations

from ..sim.clock import SECOND, millis
from .base import Machine, WorkloadRun
from .idle import VISTA_BACKGROUND_PROCESSES  # noqa: F401  (re-export)
from .vista_apps import (BrowserApp, OutlookApp, VistaKernelBackground)

#: Busy-desktop kernel timers: network ACK pacing, audio DMA refill,
#: display refresh bookkeeping — what raises the kernel line in
#: Figure 1 to ~1000 sets/s.
BUSY_KERNEL_PERIODS = tuple(
    [(f"ndis!NdisAckTimer#{i}", millis(25)) for i in range(8)]
    + [(f"hdaudio!HdaDmaRefill#{i}", millis(10)) for i in range(4)]
    + [(f"dxgkrnl!VsyncBookkeeping#{i}", millis(16)) for i in range(4)]
    + [(f"tcpip!TcpDelAckTimer#{i}", millis(100)) for i in range(8)]
    + [("nt!CcLazyWriteScan", SECOND),
       ("nt!PopPolicyTimer", SECOND)])

FIGURE1_DURATION_NS = 90 * SECOND


def run_vista_desktop(duration_ns: int = FIGURE1_DURATION_NS, *,
                      seed: int = 0, sinks=None,
                      retain_events: bool = True) -> WorkloadRun:
    machine = Machine("vista", seed=seed, sinks=sinks,
                      retain_events=retain_events)
    components = machine.scene("idle")

    busy_kernel = VistaKernelBackground(machine,
                                        periods=BUSY_KERNEL_PERIODS)
    busy_kernel.start()
    components["busy_kernel"] = busy_kernel

    outlook = OutlookApp(machine, baseline_rate_hz=70.0,
                         burst_mean_gap_ns=30 * SECOND,
                         burst_upcalls=2500)
    outlook.start()
    components["outlook"] = outlook

    browser = BrowserApp(machine, "iexplore.exe", select_rate_hz=25.0)
    browser.start()
    components["browser"] = browser

    return machine.finish("desktop", duration_ns)
