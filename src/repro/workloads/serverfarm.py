"""The Serverfarm workload: a datacenter host under sustained load.

The paper's webserver trace (Section 3.5) runs one connection at a
time; a datacenter front-end instead carries *tens of thousands of
concurrent connections per host*, each one pinning the full TCP timer
taxonomy simultaneously:

* a 0.204 s retransmission timer armed per data segment and cancelled
  by the ACK (Table 3's online-adapted value),
* a 0.04 s delayed-ACK timer, usually cancelled by the piggybacked
  response,
* a 7200 s keepalive per persistent connection (Linux; the paper notes
  Vista's webserver trace lacks it),
* TIME_WAIT reaping — batched on a shared 7.5 s wheel on Linux,
  a per-endpoint 240 s KTIMER on the Vista model.

Connections are *persistent* (requests separated by seconds of client
think time) and churn: a slot that closes re-opens after an
exponential gap, so the live population holds near ``connections``
while sockets recycle through the slab/lookaside pools exactly as the
paper's address-reuse observation describes.  Scaled up (see
``benchmarks/bench_scale.py``) this is the population that motivates
the engine's timing-wheel scheduler.
"""

from __future__ import annotations

from ..kern.registry import register_scene
from ..sim.clock import SECOND, millis, seconds
from ..linuxkern.subsystems.housekeeping import standard_housekeeping
from ..linuxkern.subsystems.net import ArpCache, TcpConnection, TcpStack
from .base import DEFAULT_DURATION_NS, Machine, WorkloadRun
from .idle import build_vista_idle_base
from .vista_apps import VistaBackgroundProcess

#: Vista TCP TIME_WAIT (4 minutes, the stack default).
VISTA_TIME_WAIT_NS = seconds(240)

SITE_VISTA_REXMIT = ("tcpip!TcpStartRexmitTimer", "nt!KeSetTimer")
SITE_VISTA_TIMEWAIT = ("tcpip!TcpStartTimeWaitTimer", "nt!KeSetTimer")


class LinuxServerFarm:
    """A fixed population of persistent TCP connections with churn.

    Each slot runs one :class:`TcpConnection` (server side, keepalive
    armed) through a handful of think-time-separated requests; when it
    closes into TIME_WAIT the slot re-opens a fresh connection after an
    exponential gap.  Slot starts are ramped deterministically over
    ``ramp_ns`` so the farm does not arm every handshake on one tick.
    """

    def __init__(self, machine: Machine, tcp: TcpStack, *,
                 connections: int = 250,
                 segments_max: int = 8,
                 think_mean_ns: int = 2 * SECOND,
                 churn_gap_mean_ns: int = SECOND,
                 ramp_ns: int = SECOND):
        self.machine = machine
        self.tcp = tcp
        self.connections = connections
        self.segments_max = segments_max
        self.think_mean_ns = think_mean_ns
        self.churn_gap_mean_ns = churn_gap_mean_ns
        self.ramp_ns = ramp_ns
        self.rng = machine.rng.stream("farm.churn")
        self.opened = 0
        self.closed = 0
        self.active = 0
        #: Data round-trips (request/response waits) per opened
        #: connection, in open order — the request population the
        #: Section 5.1 policy study replays (`repro.study.sec51`).
        self.request_counts: list[int] = []

    def start(self) -> None:
        engine = self.machine.kernel.engine
        step = max(1, self.ramp_ns // max(1, self.connections))
        for i in range(self.connections):
            engine.call_after(1 + i * step, self._open)

    def _open(self) -> None:
        self.opened += 1
        self.active += 1
        segments = self.rng.randrange(1, self.segments_max + 1)
        self.request_counts.append(segments)
        conn = TcpConnection(
            self.tcp, server_side=True, segments=segments,
            keepalive=True, think_mean_ns=self.think_mean_ns,
            on_close=self._closed)
        conn.start()

    def _closed(self) -> None:
        self.closed += 1
        self.active -= 1
        gap = max(1, int(self.rng.exponential(self.churn_gap_mean_ns)))
        self.machine.kernel.engine.call_after(gap, self._open)


class VistaServerFarm:
    """The same connection population on the Vista model.

    Per request: a 300 ms retransmit KTIMER cancelled by the ACK
    (lookaside-recycled), and the service process re-waiting via a
    winsock ``select``.  A closing endpoint arms a 240 s TIME_WAIT
    KTIMER — per-endpoint, unlike Linux's shared reaper — and the slot
    re-opens after the churn gap.  No keepalive, matching the paper's
    observation about the Vista webserver trace.
    """

    def __init__(self, machine: Machine, *,
                 connections: int = 250,
                 think_mean_ns: int = 2 * SECOND,
                 close_probability: float = 0.15,
                 churn_gap_mean_ns: int = SECOND,
                 ramp_ns: int = SECOND):
        self.machine = machine
        self.kernel = machine.kernel
        self.connections = connections
        self.think_mean_ns = think_mean_ns
        self.close_probability = close_probability
        self.churn_gap_mean_ns = churn_gap_mean_ns
        self.ramp_ns = ramp_ns
        self.rng = machine.rng.stream("vista.farm")
        self.task = self.kernel.tasks.spawn("farmd.exe")
        self.opened = 0
        self.closed = 0
        self.active = 0
        self.requests = 0
        #: Requests per opened connection, in open order — the
        #: Section 5.1 request population (`repro.study.sec51`).
        self.request_counts: list[int] = []

    def start(self) -> None:
        engine = self.kernel.engine
        step = max(1, self.ramp_ns // max(1, self.connections))
        for i in range(self.connections):
            engine.call_after(1 + i * step, self._open)

    def _open(self) -> None:
        self.opened += 1
        self.active += 1
        self.request_counts.append(0)
        self._request(len(self.request_counts) - 1)

    def _request(self, slot: int) -> None:
        self.requests += 1
        self.request_counts[slot] += 1
        kernel = self.kernel
        rng = self.rng
        rexmit = kernel.alloc_ktimer(site=SITE_VISTA_REXMIT,
                                     owner=kernel.tasks.kernel)
        kernel.set_timer(rexmit, millis(300), dpc=lambda _t: None)
        ack = max(50_000, int(rng.lognormal_latency(400_000, sigma=0.4)))

        def acked() -> None:
            if rexmit.inserted:
                kernel.cancel_timer(rexmit)
            kernel.free_ktimer(rexmit)
            if rng.random() < self.close_probability:
                self._close()
            else:
                think = max(1, int(rng.exponential(self.think_mean_ns)))
                kernel.engine.call_after(think, self._request, slot)

        kernel.engine.call_after(ack, acked)
        # The service process parks in a winsock select until the next
        # request lands on this connection.
        call = self.machine.winsock.select(self.task, seconds(30),
                                           lambda _timed_out: None)
        kernel.engine.call_after(max(1, int(rng.exponential(millis(5)))),
                                 call.fd_ready)

    def _close(self) -> None:
        self.closed += 1
        self.active -= 1
        kernel = self.kernel
        tw = kernel.alloc_ktimer(site=SITE_VISTA_TIMEWAIT,
                                 owner=kernel.tasks.kernel)
        kernel.set_timer(tw, VISTA_TIME_WAIT_NS,
                         dpc=lambda _t: kernel.free_ktimer(tw))
        gap = max(1, int(self.rng.exponential(self.churn_gap_mean_ns)))
        kernel.engine.call_after(gap, self._open)


def build_linux_serverfarm_base(machine: Machine, *,
                                connections: int = 250,
                                segments_max: int = 8,
                                think_mean_ns: int = 2 * SECOND,
                                churn_gap_mean_ns: int = SECOND
                                ) -> dict:
    """A headless farm host: housekeeping, LAN ARP, and the TCP farm."""
    kernel = machine.kernel
    components: dict = {}

    housekeeping = standard_housekeeping(kernel)
    for timer in housekeeping:
        timer.start()
    components["housekeeping"] = housekeeping

    arp = ArpCache(kernel, machine.rng.stream("net.arp"),
                   lan_event_mean_ns=seconds(2))
    arp.start()
    components["arp"] = arp

    tcp = TcpStack(kernel, machine.rng.stream("net.tcp"),
                   rtt_median_ns=150_000, loss_rate=0.002)
    components["tcp"] = tcp

    farm = LinuxServerFarm(machine, tcp, connections=connections,
                           segments_max=segments_max,
                           think_mean_ns=think_mean_ns,
                           churn_gap_mean_ns=churn_gap_mean_ns)
    farm.start()
    components["farm"] = farm
    return components


def build_vista_serverfarm_base(machine: Machine, *,
                                connections: int = 250,
                                think_mean_ns: int = 2 * SECOND,
                                churn_gap_mean_ns: int = SECOND
                                ) -> dict:
    """The farm host on Vista: idle baseline plus the service process."""
    components = build_vista_idle_base(machine)

    worker = VistaBackgroundProcess(
        machine, "farmd.exe",
        wait_timeouts=(seconds(1), seconds(30)),
        satisfied_probability=0.5, work_ns=millis(2))
    worker.start()
    components["farmd"] = worker

    farm = VistaServerFarm(machine, connections=connections,
                           think_mean_ns=think_mean_ns,
                           churn_gap_mean_ns=churn_gap_mean_ns)
    farm.start()
    components["farm"] = farm
    return components


def run_linux_serverfarm(duration_ns: int = DEFAULT_DURATION_NS, *,
                         seed: int = 0, sinks=None,
                         retain_events: bool = True,
                         connections: int = 250) -> WorkloadRun:
    machine = Machine("linux", seed=seed, sinks=sinks,
                      retain_events=retain_events)
    machine.scene("serverfarm", connections=connections)
    return machine.finish("serverfarm", duration_ns)


def run_vista_serverfarm(duration_ns: int = DEFAULT_DURATION_NS, *,
                         seed: int = 0, sinks=None,
                         retain_events: bool = True,
                         connections: int = 250) -> WorkloadRun:
    machine = Machine("vista", seed=seed, sinks=sinks,
                      retain_events=retain_events)
    machine.scene("serverfarm", connections=connections)
    return machine.finish("serverfarm", duration_ns)


register_scene("linux", "serverfarm", build_linux_serverfarm_base)
register_scene("vista", "serverfarm", build_vista_serverfarm_base)
