"""Linux kernel timer API model (``kernel/timer.c`` interface).

Implements the exact call surface the paper instruments:

* ``init_timer`` — initialise a (usually statically allocated) struct.
* ``__mod_timer`` — arm, or re-arm while pending (no cancel is logged,
  which is what makes watchdogs look the way they do in traces).
* ``del_timer`` — cancel; legal on a non-pending timer (the paper notes
  repeated deletions of already-deleted timers in its traces).
* ``__run_timers`` — fire expired callbacks from the jiffy tick.

Every call emits a :class:`~repro.tracing.events.TimerEvent` into the
kernel's relay sink, with the arming call stack, owning task and the
relative timeout — mirroring the paper's Section 3.1 instrumentation.
Timers armed mid-jiffy expire on the next jiffy boundary, so observed
relative timeouts exhibit the sub-jiffy jitter the paper's classifier
must tolerate.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

from ..sim.clock import JIFFY
from ..sim.tasks import Task
from ..tracing.events import (FLAG_DEFERRABLE, FLAG_ROUNDED, EventKind,
                              TimerEvent)
from .wheel import TimerWheel, WheelTimer


class KernelTimer(WheelTimer):
    """A ``struct timer_list``.

    ``site`` is the call stack that initialised/armed the timer;
    ``owner`` the task charged in the trace.  Linux convention is to
    reuse one statically-allocated struct for repeated timeouts, so a
    KernelTimer keeps its ``timer_id`` for life.
    """

    __slots__ = ("timer_id", "function", "site", "owner", "deferrable",
                 "domain", "kernel")

    def __init__(self, timer_id: int, kernel: "TimerBase",
                 function: Optional[Callable[["KernelTimer"], None]],
                 site: Tuple[str, ...], owner: Task,
                 deferrable: bool = False, domain: Optional[str] = None):
        super().__init__()
        self.timer_id = timer_id
        self.kernel = kernel
        self.function = function
        self.site = site
        self.owner = owner
        self.deferrable = deferrable
        # Trace attribution: syscall-armed timers are "user" accesses,
        # subsystem timers "kernel", regardless of the owning task.
        self.domain = domain if domain is not None else owner.domain

    @property
    def expires_ns(self) -> int:
        return self.expires * JIFFY

    def __repr__(self) -> str:
        return (f"<KernelTimer {self.timer_id:#x} {'/'.join(self.site[-1:])}"
                f" owner={self.owner.comm}>")


class TimerBase:
    """One ``tvec_base``: the timer wheel plus tracing, per CPU.

    On a multiprocessor each CPU owns one of these, and the machine's
    timers form the paper's "forest" of per-CPU facilities.
    """

    def __init__(self, engine, sink, sites, *, cpu: int = 0,
                 id_counter=None) -> None:
        self.engine = engine
        self.sink = sink
        self.sites = sites
        self.cpu = cpu
        self.wheel = TimerWheel(now_jiffies=0)
        # Shared across one machine's bases so ids are machine-unique,
        # but fresh per machine so runs stay deterministic.
        self._id_counter = id_counter if id_counter is not None \
            else [0x1000]
        #: The timer whose callback is currently executing, if any —
        #: what ``del_timer_sync`` must wait for (or deadlock on).
        self.running_timer = None

    # -- helpers ---------------------------------------------------------

    @property
    def jiffies(self) -> int:
        """Current jiffy counter (derived from virtual time; boot at 0)."""
        return self.engine.now // JIFFY

    def _alloc_id(self) -> int:
        self._id_counter[0] += 0x40    # spaced like slab addresses
        return self._id_counter[0]

    def _emit(self, kind: EventKind, timer: KernelTimer,
              timeout_ns: Optional[int] = None,
              expires_ns: Optional[int] = None, flags: int = 0) -> None:
        if timer.deferrable:
            flags |= FLAG_DEFERRABLE
        self.sink.emit(TimerEvent(kind, self.engine.now, timer.timer_id,
                                  timer.owner.pid, timer.owner.comm,
                                  timer.domain, timer.site, timeout_ns,
                                  expires_ns, flags))

    # -- the instrumented API --------------------------------------------

    def init_timer(self, function: Optional[Callable] = None, *,
                   site: Tuple[str, ...], owner: Task,
                   deferrable: bool = False,
                   domain: Optional[str] = None) -> KernelTimer:
        """``init_timer``/``setup_timer``: allocate and initialise."""
        timer = KernelTimer(self._alloc_id(), self, function,
                            self.sites.intern(site), owner,
                            deferrable=deferrable, domain=domain)
        self._emit(EventKind.INIT, timer)
        return timer

    def mod_timer(self, timer: KernelTimer, expires: int, *,
                  site: Optional[Tuple[str, ...]] = None,
                  timeout_ns: Optional[int] = None,
                  rounded: bool = False) -> bool:
        """``__mod_timer``: (re-)arm for absolute jiffy ``expires``.

        Returns True if the timer was pending (re-armed).  ``timeout_ns``
        lets syscall callers record the exact user-requested relative
        value; kernel callers leave it None and the observed relative
        time (with sub-jiffy jitter) is recorded, as in the paper.
        """
        was_pending = self.wheel.remove(timer)
        if site is not None:
            timer.site = self.sites.intern(site)
        self.wheel.add(timer, expires)
        observed = timeout_ns if timeout_ns is not None \
            else expires * JIFFY - self.engine.now
        self._emit(EventKind.SET, timer, timeout_ns=observed,
                   expires_ns=expires * JIFFY,
                   flags=FLAG_ROUNDED if rounded else 0)
        return was_pending

    def mod_timer_rel(self, timer: KernelTimer, delta_jiffies: int,
                      **kwargs) -> bool:
        """Arm relative to now: ``mod_timer(t, jiffies + delta)``."""
        return self.mod_timer(timer, self.jiffies + delta_jiffies, **kwargs)

    def add_timer(self, timer: KernelTimer) -> None:
        """``add_timer``: arm at the pre-set ``timer.expires``."""
        if timer.pending:
            raise ValueError("add_timer on pending timer (BUG_ON in Linux)")
        self.mod_timer(timer, timer.expires)

    def del_timer(self, timer: KernelTimer) -> bool:
        """``del_timer``: cancel.  Safe (and traced) when not pending."""
        was_pending = self.wheel.remove(timer)
        self._emit(EventKind.CANCEL, timer,
                   expires_ns=timer.expires * JIFFY if was_pending else None)
        return was_pending

    def try_to_del_timer_sync(self, timer: KernelTimer):
        """SMP variant: fails (returns -1) if the timer's callback is
        currently running on this base."""
        if self.running_timer is timer:
            return -1
        return 1 if self.del_timer(timer) else 0

    def del_timer_sync(self, timer: KernelTimer) -> bool:
        """SMP variant: deactivate and guarantee the handler is not
        running.  Calling it from the timer's own handler deadlocks on
        real hardware; here it raises instead.
        """
        if self.running_timer is timer:
            raise RuntimeError(
                "del_timer_sync from the timer's own handler deadlocks")
        return self.del_timer(timer)

    # -- expiry (called from the tick handler) ----------------------------

    def run_timers(self, *, only_due_check: bool = False) -> int:
        """``__run_timers``: fire callbacks for all expired timers."""
        return self.wheel.run_timers(self.jiffies, self._fire)

    def _fire(self, timer: KernelTimer) -> None:
        self._emit(EventKind.EXPIRE, timer,
                   expires_ns=timer.expires * JIFFY)
        if timer.function is not None:
            self.running_timer = timer
            try:
                timer.function(timer)
            finally:
                self.running_timer = None

    # -- dynticks support --------------------------------------------------

    def has_work_at(self, jiffy: int, *, include_deferrable: bool) -> bool:
        """Any timer due at or before ``jiffy``?

        With ``include_deferrable=False`` this is the NOHZ question:
        may the CPU stay asleep through this tick?
        """
        for timer in self.wheel.all_pending():
            if timer.expires <= jiffy and (include_deferrable
                                           or not timer.deferrable):
                return True
        return False
