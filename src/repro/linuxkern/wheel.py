"""The Linux 2.6 cascading timer wheel (kernel/timer.c).

This is a faithful model of the classic ``tvec_base`` structure the
instrumented kernel (2.6.23.9) used: one 256-slot wheel for the next
256 jiffies (``tv1``) and four 64-slot wheels covering successively
coarser ranges (``tv2``–``tv5``).  A timer is inserted into the wheel
level matching its distance from ``timer_jiffies``; as the base's
``timer_jiffies`` counter crosses a level boundary the corresponding
higher-level bucket is *cascaded* — its timers redistributed into lower
levels.

The structure gives O(1) insertion and removal, at the cost of cascade
work, which is the Varghese–Lauck timing-wheel trade-off the paper
cites; ``benchmarks/bench_wheel_vs_heap.py`` measures it against a
binary heap.
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional

TVN_BITS = 6
TVR_BITS = 8
TVN_SIZE = 1 << TVN_BITS      # 64
TVR_SIZE = 1 << TVR_BITS      # 256
TVN_MASK = TVN_SIZE - 1
TVR_MASK = TVR_SIZE - 1

#: Longest relative timeout representable without clamping (jiffies).
MAX_TVAL = (1 << (TVR_BITS + 4 * TVN_BITS)) - 1


class WheelTimer:
    """State a timer needs for wheel membership (``struct timer_list``)."""

    __slots__ = ("expires", "_bucket")

    def __init__(self) -> None:
        self.expires: int = 0                 # absolute jiffy
        self._bucket: Optional[list] = None   # bucket list while pending

    @property
    def pending(self) -> bool:
        """Equivalent of ``timer_pending()``: enqueued in some bucket."""
        return self._bucket is not None


class TimerWheel:
    """One ``tvec_base``: the five-level cascading wheel."""

    def __init__(self, now_jiffies: int = 0):
        #: Next jiffy to be processed by :meth:`run_timers`.
        self.timer_jiffies = now_jiffies
        self.tv1: list[list[WheelTimer]] = [[] for _ in range(TVR_SIZE)]
        self.tvn: list[list[list[WheelTimer]]] = [
            [[] for _ in range(TVN_SIZE)] for _ in range(4)]
        self.pending_count = 0
        #: Cascade statistics for the wheel-vs-heap benchmark.
        self.cascades = 0
        self.cascaded_timers = 0

    # -- internal placement (internal_add_timer) -------------------------

    def _bucket_for(self, expires: int) -> list[WheelTimer]:
        idx = expires - self.timer_jiffies
        if idx < 0:
            # Timer already expired: fire on the next processed jiffy.
            return self.tv1[self.timer_jiffies & TVR_MASK]
        if idx < TVR_SIZE:
            return self.tv1[expires & TVR_MASK]
        for level in range(4):
            shift = TVR_BITS + (level + 1) * TVN_BITS
            if idx < (1 << shift):
                slot = (expires >> (shift - TVN_BITS)) & TVN_MASK
                return self.tvn[level][slot]
        # Clamp very long timeouts, as the kernel does.
        expires = self.timer_jiffies + MAX_TVAL
        slot = (expires >> (TVR_BITS + 3 * TVN_BITS)) & TVN_MASK
        return self.tvn[3][slot]

    # -- public API -------------------------------------------------------

    def add(self, timer: WheelTimer, expires: int) -> None:
        """Enqueue ``timer`` to fire at absolute jiffy ``expires``."""
        if timer._bucket is not None:
            raise ValueError("timer is already pending")
        timer.expires = expires
        bucket = self._bucket_for(expires)
        bucket.append(timer)
        timer._bucket = bucket
        self.pending_count += 1

    def remove(self, timer: WheelTimer) -> bool:
        """Dequeue ``timer`` if pending; returns whether it was pending."""
        bucket = timer._bucket
        if bucket is None:
            return False
        bucket.remove(timer)
        timer._bucket = None
        self.pending_count -= 1
        return True

    def _cascade(self, level: int, slot: int) -> None:
        """Move one higher-level bucket's timers down (``cascade()``)."""
        bucket = self.tvn[level][slot]
        if not bucket:
            return
        self.cascades += 1
        moved = bucket[:]
        bucket.clear()
        for timer in moved:
            timer._bucket = None
            self.pending_count -= 1
            self.add(timer, timer.expires)
            self.cascaded_timers += 1

    def run_timers(self, now_jiffies: int,
                   fire: Callable[[WheelTimer], None]) -> int:
        """Process all jiffies up to and including ``now_jiffies``.

        ``fire`` is invoked for each expired timer *after* it has been
        dequeued, matching ``__run_timers`` (the callback may re-add the
        timer).  Returns the number of timers fired.
        """
        fired = 0
        while self.timer_jiffies <= now_jiffies:
            index = self.timer_jiffies & TVR_MASK
            if index == 0:
                # tv1 wrapped: cascade tv2, and higher levels as their
                # own indices wrap in turn.
                for level in range(4):
                    shift = TVR_BITS + level * TVN_BITS
                    slot = (self.timer_jiffies >> shift) & TVN_MASK
                    self._cascade(level, slot)
                    if slot != 0:
                        break
            bucket = self.tv1[index]
            while bucket:
                timer = bucket.pop(0)
                timer._bucket = None
                self.pending_count -= 1
                fired += 1
                fire(timer)
            self.timer_jiffies += 1
        return fired

    def next_expiry(self) -> Optional[int]:
        """Earliest pending expiry (jiffies), or None if wheel is empty.

        Used by the dynticks model to decide how long the CPU may sleep.
        A linear scan is fine here: the real kernel's
        ``next_timer_interrupt`` does the same wheel walk.
        """
        if self.pending_count == 0:
            return None
        best: Optional[int] = None
        for bucket in self.tv1:
            for timer in bucket:
                if best is None or timer.expires < best:
                    best = timer.expires
        for level in self.tvn:
            for bucket in level:
                for timer in bucket:
                    if best is None or timer.expires < best:
                        best = timer.expires
        return best

    def occupancy(self) -> tuple[int, ...]:
        """Pending timers per wheel level, ``(tv1, tv2, .., tv5)``.

        The per-tv occupancy figure from the paper's wheel discussion:
        how much of the pending population sits in the fine-grained
        front wheel versus the coarse cascade levels.
        """
        counts = [sum(len(bucket) for bucket in self.tv1)]
        counts.extend(sum(len(bucket) for bucket in level)
                      for level in self.tvn)
        return tuple(counts)

    def all_pending(self) -> Iterator[WheelTimer]:
        for bucket in self.tv1:
            yield from bucket
        for level in self.tvn:
            for bucket in level:
                yield from bucket
