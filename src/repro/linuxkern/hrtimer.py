"""High-resolution timers (hrtimers, Linux >= 2.6.16).

A separate nanosecond-precision facility layered over a one-shot timer
source, kept in expiry order (the kernel uses a red-black tree; a binary
heap with lazy deletion gives the same interface and complexity here).

The paper's traces instrument only the *standard* jiffy-resolution
interface — which is why no sub-jiffy values appear in its Linux data —
so the main workloads do not route through this module; it exists
because the paper's Section 2.1/6 discussion treats it as part of the
timer landscape, and the clean-slate experiments in
:mod:`repro.core.timespec` use it as their precise substrate.
"""

from __future__ import annotations

import heapq
from typing import Callable, Optional, Tuple

from ..sim.tasks import Task
from ..tracing.events import EventKind, TimerEvent


class Hrtimer:
    """One hrtimer: ns-resolution expiry with a callback."""

    __slots__ = ("timer_id", "function", "site", "owner", "expires_ns",
                 "_armed_seq")

    def __init__(self, timer_id: int, function: Optional[Callable],
                 site: Tuple[str, ...], owner: Task):
        self.timer_id = timer_id
        self.function = function
        self.site = site
        self.owner = owner
        self.expires_ns: int = 0
        #: Sequence of the heap entry that currently represents this
        #: timer; stale entries are skipped at pop time (lazy deletion).
        self._armed_seq: Optional[int] = None

    @property
    def pending(self) -> bool:
        return self._armed_seq is not None


class HrtimerBase:
    """All hrtimers of the machine, driven directly by the event engine."""

    def __init__(self, engine, sink, sites):
        self.engine = engine
        self.sink = sink
        self.sites = sites
        self._heap: list[tuple[int, int, Hrtimer]] = []
        self._seq = 0
        self._next_id = 0x8000_0000
        self._pending_event = None

    def _emit(self, kind: EventKind, timer: Hrtimer,
              timeout_ns: Optional[int] = None,
              expires_ns: Optional[int] = None) -> None:
        self.sink.emit(TimerEvent(kind, self.engine.now, timer.timer_id,
                                  timer.owner.pid, timer.owner.comm,
                                  timer.owner.domain, timer.site,
                                  timeout_ns, expires_ns))

    def hrtimer_init(self, function: Optional[Callable] = None, *,
                     site: Tuple[str, ...], owner: Task) -> Hrtimer:
        self._next_id += 0x40
        timer = Hrtimer(self._next_id, function, self.sites.intern(site),
                        owner)
        self._emit(EventKind.INIT, timer)
        return timer

    def hrtimer_start(self, timer: Hrtimer, expires_ns: int) -> None:
        """Arm for an absolute ns expiry (re-arms if already pending)."""
        self._seq += 1
        timer.expires_ns = expires_ns
        timer._armed_seq = self._seq
        heapq.heappush(self._heap, (expires_ns, self._seq, timer))
        self._emit(EventKind.SET, timer,
                   timeout_ns=expires_ns - self.engine.now,
                   expires_ns=expires_ns)
        self._reprogram()

    def hrtimer_cancel(self, timer: Hrtimer) -> bool:
        was_pending = timer._armed_seq is not None
        timer._armed_seq = None
        self._emit(EventKind.CANCEL, timer,
                   expires_ns=timer.expires_ns if was_pending else None)
        return was_pending

    # -- expiry ---------------------------------------------------------

    def _reprogram(self) -> None:
        """Schedule the engine callback for the earliest live expiry."""
        heap = self._heap
        while heap and heap[0][2]._armed_seq != heap[0][1]:
            heapq.heappop(heap)
        if self._pending_event is not None:
            self._pending_event.cancel()
            self._pending_event = None
        if heap:
            self._pending_event = self.engine.call_at(heap[0][0],
                                                      self._expire)

    def _expire(self) -> None:
        self._pending_event = None
        now = self.engine.now
        heap = self._heap
        while heap and (heap[0][2]._armed_seq != heap[0][1]
                        or heap[0][0] <= now):
            expires, seq, timer = heapq.heappop(heap)
            if timer._armed_seq != seq:
                continue
            timer._armed_seq = None
            self._emit(EventKind.EXPIRE, timer, expires_ns=expires)
            if timer.function is not None:
                timer.function(timer)
        self._reprogram()

    def next_expiry(self) -> Optional[int]:
        heap = self._heap
        while heap and heap[0][2]._armed_seq != heap[0][1]:
            heapq.heappop(heap)
        return heap[0][0] if heap else None
