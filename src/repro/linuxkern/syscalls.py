"""User-space timer entry points (the Linux syscall layer).

The paper observes that from user space only ``timer_settime`` and
``alarm`` set a timer without blocking; every other syscall sets a
timeout as the latest return time of a long-running call
(``select``/``poll``/``epoll_wait``/``nanosleep``).  This module models
those entry points over the standard timer wheel via the
``schedule_timeout`` path.

Two behaviours matter for reproducing the paper's figures:

* Timeout values are recorded *exactly as passed by user space* (no
  jitter), because the instrumentation sits at the system call
  (Section 3.1).
* ``select`` returns the *remaining* timeout when woken by file
  descriptor activity; applications like X.org and icewm pass that
  value straight back in, producing the countdown sawtooth of
  Figure 4.
"""

from __future__ import annotations

import enum
from typing import Callable, Optional

from ..sim.clock import to_jiffies
from ..sim.tasks import Task
from ..tracing.events import EventKind
from .kernel import LinuxKernel
from .timer import KernelTimer

SITE_SELECT = ("sys_select", "do_select", "schedule_timeout", "__mod_timer")
SITE_POLL = ("sys_poll", "do_sys_poll", "schedule_timeout", "__mod_timer")
SITE_EPOLL = ("sys_epoll_wait", "ep_poll", "schedule_timeout", "__mod_timer")
SITE_NANOSLEEP = ("sys_nanosleep", "do_nanosleep", "schedule_timeout",
                  "__mod_timer")
SITE_ALARM = ("sys_alarm", "it_real_fn", "__mod_timer")
SITE_TIMER_SETTIME = ("sys_timer_settime", "common_timer_set", "__mod_timer")


class WakeReason(enum.Enum):
    """Why a blocking call returned."""

    TIMEOUT = "timeout"
    FD_READY = "fd_ready"
    SIGNAL = "signal"


class BlockedCall:
    """An in-flight blocking syscall with a timeout armed.

    External models (network delivery, user input) call
    :meth:`fd_ready` to complete the call early; the timer expiry path
    completes it with :data:`WakeReason.TIMEOUT`.
    """

    def __init__(self, syscalls: "SyscallInterface", task: Task,
                 timer: Optional[KernelTimer],
                 on_return: Callable[[WakeReason, int], None]):
        self.syscalls = syscalls
        self.task = task
        self.timer = timer
        self.hr_timer = None       # set on the CONFIG_HIGH_RES path
        self.on_return = on_return
        self.done = False

    @property
    def remaining_ns(self) -> int:
        """Time left before the timeout fires (select's updated arg)."""
        now = self.syscalls.kernel.engine.now
        if self.hr_timer is not None and self.hr_timer.pending:
            return max(0, self.hr_timer.expires_ns - now)
        if self.timer is None or not self.timer.pending:
            return 0
        return max(0, self.timer.expires_ns - now)

    def fd_ready(self) -> bool:
        """Complete the call due to file-descriptor activity."""
        return self._complete(WakeReason.FD_READY)

    def signal(self) -> bool:
        """Complete the call due to signal delivery (-EINTR)."""
        return self._complete(WakeReason.SIGNAL)

    def _complete(self, reason: WakeReason) -> bool:
        if self.done:
            return False
        self.done = True
        remaining = self.remaining_ns
        if self.hr_timer is not None and self.hr_timer.pending:
            self.syscalls.kernel.hrtimers.hrtimer_cancel(self.hr_timer)
        elif self.timer is not None and self.timer.pending:
            self.syscalls.kernel.del_timer(self.timer)
        self.on_return(reason, remaining)
        return True

    def _timed_out(self, _timer) -> None:
        if self.done:
            return
        self.done = True
        if self.hr_timer is None:
            # schedule_timeout calls del_timer on every return path;
            # after an expiry the timer is already inactive, so this is
            # one of the "repeated deletions of an already-deleted
            # timer" the paper's traces show (Section 2.1).
            self.syscalls.kernel.del_timer(self.timer)
        self.on_return(WakeReason.TIMEOUT, 0)


class SyscallInterface:
    """Timer-related syscalls of one Linux machine.

    ``highres=True`` routes blocking waits through the hrtimer base
    instead of ``schedule_timeout`` — the CONFIG_HIGH_RES_TIMERS path
    that post-dates the paper's instrumented configuration.  Wakeups
    then land at nanosecond precision with no jiffy rounding and no
    +1-jiffy margin; ``benchmarks/bench_highres.py`` measures what that
    would have done to the paper's Figures 8–11.
    """

    def __init__(self, kernel: LinuxKernel, *, highres: bool = False):
        self.kernel = kernel
        self.highres = highres
        # One statically-placed timer struct per (task, syscall): Linux
        # blocks in schedule_timeout with a timer on the kernel stack at
        # a stable depth, so repeated calls reuse the same address —
        # which is what let the paper correlate select countdowns.
        self._task_timers: dict[tuple[int, str], KernelTimer] = {}
        self._hr_timers: dict[tuple[int, str, int], object] = {}

    def _timer_for(self, task: Task, name: str, site,
                   thread: int = 0) -> KernelTimer:
        key = (task.pid, name, thread)
        timer = self._task_timers.get(key)
        if timer is None:
            timer = self.kernel.init_timer(site=site, owner=task,
                                           domain="user")
            self._task_timers[key] = timer
        return timer

    # -- blocking multiplexers -------------------------------------------

    def _blocking_wait(self, task: Task, timeout_ns: Optional[int],
                       on_return, name: str, site,
                       thread: int = 0) -> BlockedCall:
        if timeout_ns is None:
            # Infinite wait: no timer is installed at all.
            return BlockedCall(self, task, None, on_return)
        timer = self._timer_for(task, name, site, thread)
        call = BlockedCall(self, task, timer, on_return)
        timer.function = call._timed_out
        if timeout_ns == 0:
            # A zero timeout "expires immediately"; Linux never sleeps
            # and the wheel is never touched, but the set/expire pair
            # still appears in the trace (the instrumentation sits at
            # the syscall), which is why zero is a common value in the
            # paper's Figure 6.
            base = self.kernel.timers
            base._emit(EventKind.SET, timer, timeout_ns=0,
                       expires_ns=self.kernel.engine.now)
            base._emit(EventKind.EXPIRE, timer,
                       expires_ns=self.kernel.engine.now)
            call.done = True
            on_return(WakeReason.TIMEOUT, 0)
            return call
        if self.highres:
            return self._blocking_wait_hr(task, timeout_ns, on_return,
                                          name, thread, call)
        # Linux guarantees a *minimum* sleep: the timeout is rounded up
        # to jiffies plus one more jiffy of margin, so wakeups land up
        # to two jiffies after the requested time — the source of the
        # >100% deliveries in the paper's Figures 8–11.
        expires = self.kernel.jiffies + to_jiffies(timeout_ns) + 1
        self.kernel.mod_timer(timer, expires, timeout_ns=timeout_ns)
        return call

    def _blocking_wait_hr(self, task: Task, timeout_ns: int, on_return,
                          name: str, thread: int,
                          call: "BlockedCall") -> "BlockedCall":
        """hrtimer-backed sleep: exact ns expiry, no margin."""
        key = (task.pid, name, thread)
        hr_timer = self._hr_timers.get(key)
        hrt = self.kernel.hrtimers
        if hr_timer is None:
            hr_timer = hrt.hrtimer_init(
                site=(f"sys_{name}", "schedule_hrtimeout",
                      "hrtimer_start"), owner=task)
            self._hr_timers[key] = hr_timer
        call.hr_timer = hr_timer
        hr_timer.function = lambda _t: call._timed_out(None)
        hrt.hrtimer_start(hr_timer, self.kernel.engine.now + timeout_ns)
        return call

    def select(self, task: Task, timeout_ns: Optional[int],
               on_return: Callable[[WakeReason, int], None], *,
               thread: int = 0) -> BlockedCall:
        """``select(2)``.  ``on_return(reason, remaining_ns)``.

        ``remaining_ns`` models Linux writing the unslept time back to
        the timeout argument.  ``thread`` distinguishes threads of one
        process, each of which blocks with a timer on its own kernel
        stack.
        """
        return self._blocking_wait(task, timeout_ns, on_return,
                                   "select", SITE_SELECT, thread)

    def poll(self, task: Task, timeout_ns: Optional[int],
             on_return, *, thread: int = 0) -> BlockedCall:
        """``poll(2)``.  Does not report remaining time (reason only)."""
        return self._blocking_wait(task, timeout_ns, on_return,
                                   "poll", SITE_POLL, thread)

    def epoll_wait(self, task: Task, timeout_ns: Optional[int],
                   on_return, *, thread: int = 0) -> BlockedCall:
        return self._blocking_wait(task, timeout_ns, on_return,
                                   "epoll", SITE_EPOLL, thread)

    def nanosleep(self, task: Task, duration_ns: int,
                  on_return, *, thread: int = 0) -> BlockedCall:
        """``nanosleep(2)`` — always runs to expiry unless signalled."""
        return self._blocking_wait(task, duration_ns, on_return,
                                   "nanosleep", SITE_NANOSLEEP, thread)

    # -- non-blocking timer syscalls ---------------------------------------

    def alarm(self, task: Task, seconds_value: float,
              on_signal: Callable[[], None]) -> None:
        """``alarm(2)``: deliver SIGALRM after ``seconds_value``; 0 cancels."""
        timer = self._timer_for(task, "alarm", SITE_ALARM)
        if seconds_value == 0:
            if timer.pending:
                self.kernel.del_timer(timer)
            return
        timeout_ns = round(seconds_value * 1_000_000_000)
        timer.function = lambda _t: on_signal()
        expires = self.kernel.jiffies + to_jiffies(timeout_ns)
        self.kernel.mod_timer(timer, expires, timeout_ns=timeout_ns)

    def setitimer(self, task: Task, value_ns: int, interval_ns: int,
                  on_signal: Callable[[], None]) -> None:
        """``setitimer(ITIMER_REAL)``: SIGALRM after ``value_ns``,
        repeating every ``interval_ns``; 0 disarms.  The profiling
        API that predates POSIX timers."""
        timer = self._timer_for(task, "itimer", SITE_ALARM)
        if value_ns == 0:
            if timer.pending:
                self.kernel.del_timer(timer)
            return

        def fire(_t: KernelTimer) -> None:
            on_signal()
            if interval_ns > 0:
                expires = self.kernel.jiffies + to_jiffies(interval_ns)
                self.kernel.mod_timer(timer, expires,
                                      timeout_ns=interval_ns)

        timer.function = fire
        expires = self.kernel.jiffies + to_jiffies(value_ns)
        self.kernel.mod_timer(timer, expires, timeout_ns=value_ns)

    def timer_settime(self, task: Task, value_ns: int,
                      interval_ns: int, on_expire: Callable[[], None],
                      *, name: str = "posix0") -> KernelTimer:
        """POSIX ``timer_settime``: one-shot or periodic; 0 disarms."""
        timer = self._timer_for(task, f"settime:{name}", SITE_TIMER_SETTIME)
        if value_ns == 0:
            if timer.pending:
                self.kernel.del_timer(timer)
            return timer

        def fire(_t: KernelTimer) -> None:
            on_expire()
            if interval_ns > 0:
                expires = self.kernel.jiffies + to_jiffies(interval_ns)
                self.kernel.mod_timer(timer, expires,
                                      timeout_ns=interval_ns)

        timer.function = fire
        expires = self.kernel.jiffies + to_jiffies(value_ns)
        self.kernel.mod_timer(timer, expires, timeout_ns=value_ns)
        return timer
