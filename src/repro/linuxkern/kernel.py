"""The top-level Linux machine model.

Glues the simulation substrate to the timer subsystem: per-CPU periodic
tick devices drive the jiffy clock and ``__run_timers`` on each CPU's
``tvec_base``; the relayfs sink receives every timer event; syscall and
subsystem layers hang off this object.

The default machine is single-CPU, matching the paper's instrumented
configuration ("the system ran in 32-bit mode on a single processor").
With ``cpus > 1`` the machine grows the per-CPU timer *forest* the
paper describes in Section 2, including staggered per-CPU ticks, timer
placement, CPU-offline migration, and the ``del_timer_sync`` family.

Dynticks (CONFIG_NO_HZ) and deferrable-timer behaviour are modelled for
the Section 5.3 power experiments and default to off.
"""

from __future__ import annotations

from typing import Optional

from ..kern.base import BackendBase
from ..sim.clock import JIFFY, to_jiffies
from ..sim.devices import TickDevice
from ..sim.engine import Engine
from ..sim.power import PowerMeter
from ..sim.rng import RngRegistry
from ..sim.tasks import Task, TaskTable
from ..tracing.events import CallSiteRegistry
from ..tracing.relay import RelayBuffer
from .hrtimer import HrtimerBase
from .jiffies import round_jiffies, round_jiffies_relative
from .timer import KernelTimer, TimerBase


class LinuxKernel(BackendBase):
    """One simulated Linux 2.6.23 machine (single-CPU by default)."""

    os_name = "linux"

    def __init__(self, engine: Optional[Engine] = None, *,
                 seed: int = 0, dynticks: bool = False, cpus: int = 1,
                 sink=None, power: Optional[PowerMeter] = None):
        if cpus < 1:
            raise ValueError("need at least one CPU")
        self.engine = engine if engine is not None else Engine()
        self.tasks = TaskTable()
        self.rng = RngRegistry(seed)
        self.sites = CallSiteRegistry()
        self.sink = sink if sink is not None else RelayBuffer()
        self.power = power if power is not None else PowerMeter()
        self.dynticks = dynticks
        self.cpus = cpus

        id_counter = [0x1000]
        self.bases = [TimerBase(self.engine, self.sink, self.sites,
                                cpu=cpu, id_counter=id_counter)
                      for cpu in range(cpus)]
        #: CPU 0's base: the facility single-CPU code talks to.
        self.timers = self.bases[0]
        self._online = [True] * cpus
        self.hrtimers = HrtimerBase(self.engine, self.sink, self.sites)

        # Per-CPU ticks; secondary CPUs staggered within the jiffy, as
        # real SMP kernels do to spread timer-softirq work.
        self.ticks = []
        for cpu, base in enumerate(self.bases):
            tick = TickDevice(self.engine, JIFFY,
                              self._make_tick_handler(base),
                              power=self.power,
                              idle_predicate=(self._tick_skippable
                                              if cpu == 0 else None))
            if cpu > 0:
                offset = (cpu * JIFFY) // cpus
                self.engine.call_after(offset, tick.start)
            else:
                tick.start()
            self.ticks.append(tick)
        self.tick = self.ticks[0]
        #: Set by workloads that keep the CPU busy; affects only the
        #: idle/wakeup accounting, not timer semantics.
        self.cpu_busy = False
        self._placement_counter = 0

    # -- instrumentation --------------------------------------------------

    def _sink_rebound(self, tee) -> None:
        # attach_sink (from BackendBase) replaced self.sink with a tee;
        # the per-CPU bases and the hrtimer base cache their own refs.
        for base in self.bases:
            base.sink = tee
        self.hrtimers.sink = tee

    # -- tick path --------------------------------------------------------

    @property
    def jiffies(self) -> int:
        return self.timers.jiffies

    def _make_tick_handler(self, base: TimerBase):
        def handler(_tick_count: int) -> None:
            base.run_timers()
        return handler

    def _tick_skippable(self) -> bool:
        """NOHZ: skip this tick if the CPU is idle and nothing is due.

        Deferrable timers do not hold the CPU awake — exactly the
        2.6.22 semantics the paper describes.
        """
        if not self.dynticks or self.cpu_busy:
            return False
        due_jiffy = (self.engine.now + JIFFY) // JIFFY
        return not self.timers.has_work_at(due_jiffy,
                                           include_deferrable=False)

    # -- timer API (routed to the owning CPU's base) -------------------------

    def base_for(self, cpu: Optional[int] = None,
                 owner: Optional[Task] = None) -> TimerBase:
        """Pick a base: explicit CPU, the owner's home CPU, or CPU 0."""
        if cpu is not None:
            if not self._online[cpu]:
                raise ValueError(f"cpu {cpu} is offline")
            return self.bases[cpu]
        if owner is not None and self.cpus > 1:
            return self.bases[owner.pid % self.cpus]
        return self.bases[0]

    def init_timer(self, function=None, *, site, owner,
                   deferrable: bool = False, domain: Optional[str] = None,
                   cpu: Optional[int] = None) -> KernelTimer:
        """Allocate a timer on ``cpu`` (default: the owner's home CPU)."""
        base = self.base_for(cpu, owner)
        return base.init_timer(function, site=site, owner=owner,
                               deferrable=deferrable, domain=domain)

    def mod_timer(self, timer: KernelTimer, *args, **kwargs):
        return timer.kernel.mod_timer(timer, *args, **kwargs)

    def mod_timer_rel(self, timer: KernelTimer, *args, **kwargs):
        return timer.kernel.mod_timer_rel(timer, *args, **kwargs)

    def add_timer(self, timer: KernelTimer, *args, **kwargs):
        return timer.kernel.add_timer(timer, *args, **kwargs)

    def del_timer(self, timer: KernelTimer):
        return timer.kernel.del_timer(timer)

    def del_timer_sync(self, timer: KernelTimer):
        return timer.kernel.del_timer_sync(timer)

    def try_to_del_timer_sync(self, timer: KernelTimer):
        return timer.kernel.try_to_del_timer_sync(timer)

    # -- CPU hotplug -----------------------------------------------------------

    def offline_cpu(self, cpu: int, *, migrate_to: int = 0) -> int:
        """Take a CPU down, migrating its pending timers
        (``migrate_timers`` in the hotplug path).  Returns the number
        of timers moved."""
        if cpu == 0:
            raise ValueError("cannot offline the boot CPU")
        if cpu == migrate_to:
            raise ValueError("cannot migrate to the dying CPU")
        if not self._online[cpu]:
            return 0
        source = self.bases[cpu]
        target = self.bases[migrate_to]
        moved = 0
        for timer in list(source.wheel.all_pending()):
            source.wheel.remove(timer)
            timer.kernel = target
            target.wheel.add(timer, timer.expires)
            moved += 1
        self._online[cpu] = False
        self.ticks[cpu].stop()
        return moved

    def round_jiffies(self, j: int) -> int:
        return round_jiffies(j, self.jiffies)

    def round_jiffies_relative(self, delta: int) -> int:
        return round_jiffies_relative(delta, self.jiffies)

    # -- portable surface (repro.kern) --------------------------------------

    def portable_timer(self, owner: Task, *, name: str,
                       domain: str = "user") -> "LinuxPortableTimer":
        """An OS-neutral handle lowering to the timer-wheel API."""
        return LinuxPortableTimer(self, owner, name, domain)


class LinuxPortableTimer:
    """The portable arm/cancel verbs over one wheel timer.

    Arming follows the ``schedule_timeout`` idiom (expiry one jiffy
    past the requested delay, exact requested value recorded on the
    SET), so portable timers trace like syscall-armed ones.
    """

    __slots__ = ("_kernel", "_timer", "_callback")

    def __init__(self, kernel: LinuxKernel, owner: Task, name: str,
                 domain: str):
        self._kernel = kernel
        self._callback = None
        self._timer = kernel.init_timer(
            self._expired, site=(f"app!{name}", "portable_arm",
                                 "__mod_timer"),
            owner=owner, domain=domain)

    def _expired(self, _timer) -> None:
        callback = self._callback
        if callback is not None:
            callback()

    def _arm(self, delay_ns: int) -> None:
        kernel = self._kernel
        expires = kernel.jiffies + to_jiffies(delay_ns) + 1
        kernel.mod_timer(self._timer, expires, timeout_ns=delay_ns)

    def arm_after(self, delay_ns: int, callback) -> None:
        self._callback = callback
        self._arm(delay_ns)

    def arm_periodic(self, period_ns: int, callback) -> None:
        def tick() -> None:
            callback()
            self._arm(period_ns)
        self._callback = tick
        self._arm(period_ns)

    def arm_watchdog(self, timeout_ns: int, callback) -> None:
        # Re-arming a pending watchdog is exactly mod_timer on a
        # pending timer: the old episode ends REARMED.
        self._callback = callback
        self._arm(timeout_ns)

    def cancel(self) -> bool:
        return self._kernel.del_timer(self._timer)

    @property
    def pending(self) -> bool:
        return self._timer.pending
