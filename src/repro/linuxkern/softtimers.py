"""Soft timers (Aron & Druschel), the related work behind the paper's
overhead motivation.

"Soft timers is a facility to emulate a timer subsystem of microsecond
precision without the processing overhead of hardware timer
interrupts, by polling for timer expiry at convenient points in the
execution of an operating system" (Section 6, citing [4]).  The
'convenient points' — trigger states — are moments the kernel is
entered anyway: syscall returns, exception exits, interrupt epilogues.

:class:`SoftTimerFacility` implements the scheme over the simulated
machine: expired soft timers fire when a trigger point happens to
occur, and a (coarse) hardware fallback bounds the worst-case delay.
The win is measured in hardware interrupts avoided; the cost is expiry
latency that depends on how busy the system is — both are surfaced for
the ablation in ``benchmarks/bench_softtimers.py``.
"""

from __future__ import annotations

import heapq
from typing import Callable, Optional

from ..sim.clock import MICROSECOND, MILLISECOND
from ..sim.engine import Engine
from ..sim.power import PowerMeter
from ..sim.rng import RngStream


class SoftTimer:
    """One microsecond-precision soft timer."""

    __slots__ = ("callback", "expires_ns", "armed", "_seq",
                 "fired_at_ns")

    def __init__(self) -> None:
        self.callback: Optional[Callable[[], None]] = None
        self.expires_ns = 0
        self.armed = False
        self._seq = 0
        self.fired_at_ns: Optional[int] = None


class SoftTimerFacility:
    """Poll-at-trigger-states timer facility with a hardware fallback.

    ``fallback_period_ns`` is the coarse hardware interrupt bounding
    worst-case expiry delay (Aron & Druschel used ~1 ms); trigger
    points are reported by the workload via :meth:`trigger_point` (or
    generated synthetically with :meth:`drive_trigger_points`).
    """

    def __init__(self, engine: Engine, *,
                 fallback_period_ns: int = MILLISECOND,
                 power: Optional[PowerMeter] = None):
        self.engine = engine
        self.power = power if power is not None else PowerMeter()
        self.fallback_period_ns = fallback_period_ns
        self._heap: list[tuple[int, int, SoftTimer]] = []
        self._seq = 0
        self._fallback_event = None
        #: Statistics for the ablation.
        self.trigger_polls = 0
        self.fired_at_trigger = 0
        self.fired_at_fallback = 0
        self.latencies_ns: list[int] = []
        self._schedule_fallback()

    # -- client API -----------------------------------------------------------

    def arm(self, timer: SoftTimer, delay_ns: int,
            callback: Callable[[], None]) -> None:
        self._seq += 1
        timer.callback = callback
        timer.expires_ns = self.engine.now + delay_ns
        timer.armed = True
        timer._seq = self._seq
        heapq.heappush(self._heap, (timer.expires_ns, self._seq, timer))

    def cancel(self, timer: SoftTimer) -> bool:
        if not timer.armed:
            return False
        timer.armed = False
        return True

    def pending(self) -> int:
        return sum(1 for _e, seq, t in self._heap
                   if t.armed and t._seq == seq)

    # -- expiry paths ------------------------------------------------------------

    def trigger_point(self) -> int:
        """The kernel was entered anyway: poll for due timers (cheap)."""
        self.trigger_polls += 1
        return self._fire_due(via_trigger=True)

    def _fallback_interrupt(self) -> None:
        fired = self._fire_due(via_trigger=False)
        if fired and self.power is not None:
            pass   # interrupt already charged below
        self._schedule_fallback()

    def _schedule_fallback(self) -> None:
        def fire():
            self.power.interrupt(cpu_was_idle=True)
            self._fallback_interrupt()
        self._fallback_event = self.engine.call_after(
            self.fallback_period_ns, fire)

    def _fire_due(self, *, via_trigger: bool) -> int:
        now = self.engine.now
        fired = 0
        heap = self._heap
        while heap:
            expires, seq, timer = heap[0]
            if timer._seq != seq or not timer.armed:
                heapq.heappop(heap)
                continue
            if expires > now:
                break
            heapq.heappop(heap)
            timer.armed = False
            timer.fired_at_ns = now
            fired += 1
            self.latencies_ns.append(now - expires)
            if via_trigger:
                self.fired_at_trigger += 1
            else:
                self.fired_at_fallback += 1
            if timer.callback is not None:
                timer.callback()
        return fired

    # -- synthetic trigger-point source --------------------------------------------

    def drive_trigger_points(self, rng: RngStream, *,
                             mean_gap_ns: int = 20 * MICROSECOND,
                             until_ns: int) -> None:
        """Generate trigger points (syscall returns etc.) of a busy
        system until ``until_ns``."""
        def next_point() -> None:
            if self.engine.now >= until_ns:
                return
            self.trigger_point()
            gap = max(1, int(rng.exponential(mean_gap_ns)))
            self.engine.call_after(gap, next_point)

        self.engine.call_after(
            max(1, int(rng.exponential(mean_gap_ns))), next_point)

    # -- reporting ----------------------------------------------------------------

    def latency_percentile(self, pct: float) -> int:
        if not self.latencies_ns:
            return 0
        ordered = sorted(self.latencies_ns)
        index = min(len(ordered) - 1, int(pct / 100 * len(ordered)))
        return ordered[index]
