"""Jiffy arithmetic helpers, including ``round_jiffies``.

``round_jiffies``/``round_jiffies_relative`` (added in 2.6.20) round an
expiry to the next whole second so imprecise timers expire in batches —
one of the ad-hoc power extensions the paper surveys in Section 2.1 and
generalises in Section 5.3.  The rounding rule matches the kernel: an
expiry within the first quarter-second past a boundary rounds down,
anything else rounds up, and a result not in the future is left alone.
"""

from __future__ import annotations

from ..sim.clock import HZ


def round_jiffies(j: int, now: int) -> int:
    """Round absolute jiffy ``j`` to a whole-second boundary.

    ``now`` is the current jiffy counter; a rounded value that would
    land in the past (or now) is returned unrounded, as in the kernel.
    """
    rem = j % HZ
    if rem < HZ // 4:
        rounded = j - rem
    else:
        rounded = j + (HZ - rem)
    if rounded <= now:
        return j
    return rounded


def round_jiffies_relative(delta: int, now: int) -> int:
    """Round a relative jiffy delay; returns a relative value."""
    j = round_jiffies(now + delta, now)
    return j - now


def msecs_to_jiffies(ms: float) -> int:
    """``msecs_to_jiffies``: convert with round-up, minimum handled by caller."""
    if ms <= 0:
        return 0
    return -(-int(ms * HZ) // 1000)
