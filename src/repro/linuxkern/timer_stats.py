"""``/proc/timer_stats`` — the kernel's own timer statistics facility.

"Linux already includes functionality to collect timer statistics as
part of the kernel debug code, providing a rough estimation of timer
usage in the Linux kernel" (Section 3.1).  The paper built its own
logging because timer_stats only aggregates *counts per start site* —
it cannot answer questions about durations, cancellation fractions or
per-timer behaviour.  This module models the facility faithfully so
that limitation is reproducible: compare its output with what the full
trace analyses recover.

Usage matches the procfs interface::

    stats = TimerStats()
    kernel = LinuxKernel(sink=TeeSink([RelayBuffer(), stats]))
    stats.start()           # echo 1 > /proc/timer_stats
    ...
    stats.stop()            # echo 0 > /proc/timer_stats
    print(stats.render())   # cat /proc/timer_stats
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..sim.clock import SECOND
from ..tracing.events import EventKind, TimerEvent


@dataclass
class StatsEntry:
    """One aggregated line: a start site and who used it."""

    count: int
    pid: int
    comm: str
    site: Tuple[str, ...]
    deferrable: bool = False

    @property
    def start_func(self) -> str:
        return self.site[0] if self.site else "?"

    @property
    def expire_func(self) -> str:
        return self.site[-1] if self.site else "?"


class TimerStats:
    """Online per-site SET counters, enabled and disabled like procfs.

    Acts as an event sink; only SET events while enabled are counted
    (timer_stats hooks ``timer_stats_timer_set_start_info``).
    """

    def __init__(self) -> None:
        self.enabled = False
        self._entries: dict[tuple, StatsEntry] = {}
        self._started_at: Optional[int] = None
        self._stopped_at: Optional[int] = None
        self.total_events = 0

    # -- procfs-style control ------------------------------------------------

    def start(self) -> None:
        """``echo 1 > /proc/timer_stats`` — also clears old data."""
        self.enabled = True
        self._entries.clear()
        self.total_events = 0
        self._started_at = None
        self._stopped_at = None

    def stop(self) -> None:
        """``echo 0 > /proc/timer_stats``."""
        self.enabled = False

    # -- sink interface ---------------------------------------------------------

    def emit(self, event: TimerEvent) -> None:
        if not self.enabled or event.kind != EventKind.SET:
            return
        if self._started_at is None:
            self._started_at = event.ts
        self._stopped_at = event.ts
        self.total_events += 1
        key = (event.site, event.pid)
        entry = self._entries.get(key)
        if entry is None:
            self._entries[key] = StatsEntry(1, event.pid, event.comm,
                                            event.site, event.deferrable)
        else:
            entry.count += 1

    # -- reporting -----------------------------------------------------------------

    @property
    def sample_period_ns(self) -> int:
        if self._started_at is None or self._stopped_at is None:
            return 0
        return self._stopped_at - self._started_at

    def entries(self) -> list[StatsEntry]:
        """All lines, most frequent first (as procfs sorts)."""
        return sorted(self._entries.values(),
                      key=lambda entry: -entry.count)

    def render(self) -> str:
        """``cat /proc/timer_stats``-style output."""
        period_s = self.sample_period_ns / SECOND
        lines = ["Timer Stats Version: v0.2",
                 f"Sample period: {period_s:.3f} s"]
        for entry in self.entries():
            flag = "D" if entry.deferrable else " "
            lines.append(
                f"{entry.count:5d}{flag} {entry.pid:5d} "
                f"{entry.comm:<16} {entry.start_func} "
                f"({entry.expire_func})")
        rate = (self.total_events / period_s) if period_s else 0.0
        lines.append(f"{self.total_events} total events, "
                     f"{rate:.3f} events/sec")
        return "\n".join(lines)
