"""Kernel subsystems that own the timers of Table 3."""

from .block import BlockLayer, JournalDaemon
from .console import ConsoleBlanker
from .dhcp import DhcpClient
from .housekeeping import PeriodicKernelTimer, standard_housekeeping
from .net import ArpCache, TcpConnection, TcpStack

__all__ = [
    "BlockLayer", "JournalDaemon", "ConsoleBlanker", "DhcpClient",
    "PeriodicKernelTimer", "standard_housekeeping",
    "ArpCache", "TcpConnection", "TcpStack",
]
