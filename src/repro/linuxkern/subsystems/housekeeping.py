"""Periodic kernel housekeeping timers.

These are the always-expire-and-rearm "periodic ticker" timers that
dominate the paper's Idle workload (Figure 2) and populate Table 3:

====================  ========  =============================
timer                 period    Table 3 classification
====================  ========  =============================
workqueue timer       1 s       Periodic
kernel workqueue      2 s       Periodic
clocksource watchdog  0.5 s     Periodic
USB hub status poll   0.248 s   Periodic (62 jiffies)
e1000 watchdog        2 s       Periodic
dirty page writeback  5 s       Periodic
packet scheduler      5 s       Periodic
ARP cache flush       8 s       Periodic
====================  ========  =============================

Each re-arms itself from inside its expiry callback with the same
relative value, which is precisely the trace signature the paper's
classifier keys on.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

from ...sim.clock import millis, seconds, to_jiffies
from ..kernel import LinuxKernel
from ..timer import KernelTimer


class PeriodicKernelTimer:
    """A self-rearming kernel timer with a fixed period.

    ``work`` (if given) runs on each expiry before the re-arm, so
    subsystems can hang extra behaviour (e.g. the ARP flush walking its
    cache) off the tick.  ``use_round_jiffies`` opts in to the 2.6.20
    whole-second batching helper — rarely used in the paper's kernel
    (40 of 1464 sets), so it defaults off.
    """

    def __init__(self, kernel: LinuxKernel, *, name: str, period_ns: int,
                 site: Tuple[str, ...],
                 work: Optional[Callable[[], None]] = None,
                 deferrable: bool = False, use_round_jiffies: bool = False):
        self.kernel = kernel
        self.name = name
        self.period_jiffies = to_jiffies(period_ns)
        self.work = work
        self.use_round_jiffies = use_round_jiffies
        self.expirations = 0
        self.timer = kernel.init_timer(self._fire, site=site,
                                       owner=kernel.tasks.kernel,
                                       deferrable=deferrable)
        self.started = False

    def start(self) -> None:
        if self.started:
            return
        self.started = True
        self._arm()

    def stop(self) -> None:
        self.started = False
        if self.timer.pending:
            self.kernel.del_timer(self.timer)

    def _arm(self) -> None:
        expires = self.kernel.jiffies + self.period_jiffies
        rounded = False
        if self.use_round_jiffies:
            new = self.kernel.round_jiffies(expires)
            rounded = new != expires
            expires = new
        self.kernel.mod_timer(self.timer, expires, rounded=rounded)

    def _fire(self, _timer: KernelTimer) -> None:
        self.expirations += 1
        if self.work is not None:
            self.work()
        if self.started:
            self._arm()


def standard_housekeeping(kernel: LinuxKernel, *,
                          with_network: bool = True,
                          with_usb: bool = True) -> list[PeriodicKernelTimer]:
    """The background periodic timers of an idle Debian 4.0 box.

    Returns them un-started so a workload can pick a subset.
    """
    timers = [
        PeriodicKernelTimer(
            kernel, name="workqueue-timer", period_ns=seconds(1),
            site=("run_timer_softirq", "delayed_work_timer_fn",
                  "queue_delayed_work", "__mod_timer")),
        PeriodicKernelTimer(
            kernel, name="kernel-workqueue", period_ns=seconds(2),
            site=("worker_thread", "run_workqueue",
                  "queue_delayed_work_on", "__mod_timer")),
        PeriodicKernelTimer(
            kernel, name="clocksource-watchdog", period_ns=millis(500),
            site=("clocksource_register", "clocksource_check_watchdog",
                  "clocksource_watchdog", "__mod_timer")),
        PeriodicKernelTimer(
            kernel, name="writeback", period_ns=seconds(5),
            site=("pdflush", "wb_kupdate", "wb_timer_fn", "__mod_timer")),
    ]
    if with_usb:
        timers.append(PeriodicKernelTimer(
            kernel, name="usb-hub-poll", period_ns=millis(248),
            site=("uhci_hcd", "rh_timer_func", "usb_hcd_poll_rh_status",
                  "__mod_timer")))
    if with_network:
        timers.append(PeriodicKernelTimer(
            kernel, name="e1000-watchdog", period_ns=seconds(2),
            site=("e1000_probe", "e1000_watchdog", "__mod_timer")))
        timers.append(PeriodicKernelTimer(
            kernel, name="pktsched", period_ns=seconds(5),
            site=("dev_watchdog", "qdisc_watchdog", "__mod_timer")))
    return timers
