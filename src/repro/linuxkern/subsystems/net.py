"""Linux networking timers: TCP socket timers and the ARP cache.

These produce the network-related rows of Table 3:

* 0.04 s  — TCP delayed-ACK minimum (``Sockets``, Timeout)
* 0.204 s — TCP retransmission floor, 51 jiffies: the one value the
  paper singles out as *online-adapted* (Jacobson/Karels RTO clamped at
  HZ/5 + 1 on LAN round-trips)
* 3 s     — SYN/SYN-ACK retransmit (``Sockets``, Timeout)
* 7200 s  — TCP keepalive (Timeout)
* 2/4 s   — ARP neighbour housekeeping (Periodic)
* 5 s     — ARP reachability timeout, cancelled at random by LAN
  activity (the vertical 5 s column in Figures 8–11)
* 8 s     — ARP cache flush (Periodic)

Socket structures come from a small recycled pool, modelling slab
allocation: the paper's Table 1 counts only ~100 distinct timer
addresses in a 30000-connection webserver run precisely because
``struct sock`` memory is reused.
"""

from __future__ import annotations

from typing import Callable, Optional

from ...sim.clock import MILLISECOND, millis, seconds, to_jiffies
from ...sim.rng import RngStream
from ..kernel import LinuxKernel
from ..timer import KernelTimer
from .housekeeping import PeriodicKernelTimer

SITE_SYNACK = ("tcp_v4_conn_request", "inet_csk_reqsk_queue_hash_add",
               "reqsk_queue_hash_req", "__mod_timer")
SITE_RTO = ("tcp_ack", "inet_csk_reset_xmit_timer", "sk_reset_timer",
            "__mod_timer")
SITE_DELACK = ("tcp_rcv_established", "tcp_send_delayed_ack",
               "sk_reset_timer", "__mod_timer")
SITE_KEEPALIVE = ("inet_csk_init_xmit_timers",
                  "inet_csk_reset_keepalive_timer", "sk_reset_timer",
                  "__mod_timer")
SITE_TIMEWAIT = ("tcp_time_wait", "inet_twsk_schedule", "__mod_timer")
SITE_ARP_TIMEOUT = ("neigh_update", "neigh_add_timer", "__mod_timer")

#: TCP constants from the 2.6.23 sources.
TCP_RTO_MIN_NS = millis(200)        # HZ/5
TCP_RTO_MAX_NS = seconds(120)
TCP_DELACK_MIN_NS = millis(40)      # HZ/25
TCP_SYN_RETRANS_NS = seconds(3)
TCP_KEEPALIVE_NS = seconds(7200)


class RttEstimator:
    """Jacobson/Karels smoothed RTT, as in ``tcp_rtt_estimator``."""

    def __init__(self) -> None:
        self.srtt_ns: Optional[float] = None
        self.rttvar_ns: float = 0.0

    def sample(self, rtt_ns: float) -> None:
        if self.srtt_ns is None:
            self.srtt_ns = rtt_ns
            self.rttvar_ns = rtt_ns / 2
            return
        err = rtt_ns - self.srtt_ns
        self.srtt_ns += err / 8
        self.rttvar_ns += (abs(err) - self.rttvar_ns) / 4

    def rto_ns(self) -> int:
        """Current retransmission timeout, clamped to kernel bounds.

        As in ``tcp_set_rto``: the variance term is floored at
        TCP_RTO_MIN, so a LAN connection's RTO is srtt + 200 ms — which
        rounds up to 51 jiffies, the paper's online-adapted 0.204 s.
        """
        if self.srtt_ns is None:
            return TCP_SYN_RETRANS_NS
        raw = self.srtt_ns + max(4 * self.rttvar_ns, TCP_RTO_MIN_NS)
        return int(min(raw, TCP_RTO_MAX_NS))


class TcpSocket:
    """One pooled ``struct sock`` with its three timers."""

    def __init__(self, stack: "TcpStack", index: int):
        self.stack = stack
        self.index = index
        kernel = stack.kernel
        owner = kernel.tasks.kernel
        self.rto_timer = kernel.init_timer(site=SITE_RTO, owner=owner)
        self.delack_timer = kernel.init_timer(site=SITE_DELACK, owner=owner)
        self.keepalive_timer = kernel.init_timer(site=SITE_KEEPALIVE,
                                                 owner=owner)
        self.synack_timer = kernel.init_timer(site=SITE_SYNACK, owner=owner)
        self.rtt = RttEstimator()
        self.in_use = False

    def reset(self) -> None:
        """Fresh-connection state on slab reuse."""
        self.rtt = RttEstimator()
        self.in_use = True

    def release(self) -> None:
        kernel = self.stack.kernel
        for timer in (self.rto_timer, self.delack_timer,
                      self.keepalive_timer, self.synack_timer):
            if timer.pending:
                kernel.del_timer(timer)
        self.in_use = False
        self.stack._pool.append(self)


class TcpStack:
    """TCP timer behaviour of one machine.

    Connections are driven by :class:`TcpConnection`, which schedules
    packet round-trips on the engine using the stack's RTT model and
    arms/cancels the socket timers exactly where the kernel would.
    """

    def __init__(self, kernel: LinuxKernel, rng: RngStream, *,
                 rtt_median_ns: int = 200_000, loss_rate: float = 0.002):
        self.kernel = kernel
        self.rng = rng
        self.rtt_median_ns = rtt_median_ns
        self.loss_rate = loss_rate
        self._pool: list[TcpSocket] = []
        self._sock_count = 0
        self.time_wait_count = 0
        self._tw_reaper = PeriodicKernelTimer(
            kernel, name="tw-reaper", period_ns=seconds(7.5),
            site=SITE_TIMEWAIT, work=self._reap_time_wait)

    def alloc_socket(self) -> TcpSocket:
        if self._pool:
            sock = self._pool.pop()
        else:
            sock = TcpSocket(self, self._sock_count)
            self._sock_count += 1
        sock.reset()
        return sock

    def sample_rtt(self) -> int:
        return max(50_000, int(self.rng.lognormal_latency(
            self.rtt_median_ns, sigma=0.3)))

    def lost(self) -> bool:
        return self.rng.random() < self.loss_rate

    def enter_time_wait(self, _sock: TcpSocket) -> None:
        """TIME_WAIT uses the shared reaper wheel, not per-sock timers."""
        self.time_wait_count += 1
        if not self._tw_reaper.started:
            self._tw_reaper.start()

    def _reap_time_wait(self) -> None:
        had = self.time_wait_count
        self.time_wait_count = 0
        if had == 0 and self._tw_reaper.started:
            self._tw_reaper.stop()


class TcpConnection:
    """One connection lifecycle: handshake, request/response, close.

    ``server_side=True`` models the accept path (SYN-ACK retransmit
    timer); ``False`` the connect path (SYN retransmit).  ``segments``
    is how many data round-trips the connection performs; each arms the
    RTO and delayed-ACK timers.
    """

    def __init__(self, stack: TcpStack, *, server_side: bool,
                 segments: int = 2, keepalive: bool = True,
                 think_mean_ns: int = 2 * MILLISECOND,
                 on_close: Optional[Callable[[], None]] = None):
        self.stack = stack
        self.server_side = server_side
        self.segments_left = segments
        self.keepalive = keepalive
        #: Peer think time between data round-trips.  The webserver's
        #: back-to-back requests use the 2 ms default; persistent
        #: (keepalive) connections pass seconds here.
        self.think_mean_ns = think_mean_ns
        self.on_close = on_close
        self.sock = stack.alloc_socket()
        self.closed = False
        self.retransmits = 0

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Begin the handshake (SYN seen / SYN sent)."""
        kernel = self.stack.kernel
        sock = self.sock
        kernel.mod_timer_rel(sock.synack_timer,
                             to_jiffies(TCP_SYN_RETRANS_NS))
        sock.synack_timer.function = self._synack_retransmit
        rtt = self.stack.sample_rtt()
        if self.stack.lost():
            return      # handshake ACK lost; retransmit timer will fire
        kernel.engine.call_after(rtt, self._established, rtt)

    def _synack_retransmit(self, _timer: KernelTimer) -> None:
        self.retransmits += 1
        if self.retransmits > 5 or self.closed:
            self._close()
            return
        kernel = self.stack.kernel
        kernel.mod_timer_rel(self.sock.synack_timer,
                             to_jiffies(TCP_SYN_RETRANS_NS
                                        * (1 << self.retransmits)))
        if not self.stack.lost():
            rtt = self.stack.sample_rtt()
            kernel.engine.call_after(rtt, self._established, rtt)

    def _established(self, handshake_rtt_ns: int) -> None:
        if self.closed:
            return
        kernel = self.stack.kernel
        sock = self.sock
        # TCP takes its first RTT sample from the handshake, so the
        # very first data RTO is already the adapted 0.204 s value.
        sock.rtt.sample(handshake_rtt_ns)
        if sock.synack_timer.pending:
            kernel.del_timer(sock.synack_timer)
        if self.keepalive:
            kernel.mod_timer_rel(sock.keepalive_timer,
                                 to_jiffies(TCP_KEEPALIVE_NS))
            sock.keepalive_timer.function = self._keepalive_probe
        self._next_segment()

    def _next_segment(self) -> None:
        if self.closed:
            return
        if self.segments_left <= 0:
            self._close()
            return
        self.segments_left -= 1
        kernel = self.stack.kernel
        sock = self.sock
        # Peer data arrives: delayed ACK armed, usually cancelled when
        # our response piggybacks the ACK a few ms later.
        kernel.mod_timer_rel(sock.delack_timer,
                             to_jiffies(TCP_DELACK_MIN_NS))
        sock.delack_timer.function = lambda _t: None  # ACK sent on expiry
        think = int(self.stack.rng.lognormal_latency(self.think_mean_ns,
                                                     sigma=0.8))
        kernel.engine.call_after(think, self._send_response)

    def _send_response(self) -> None:
        if self.closed:
            return
        kernel = self.stack.kernel
        sock = self.sock
        if sock.delack_timer.pending:
            kernel.del_timer(sock.delack_timer)       # ACK piggybacked
        rto = sock.rtt.rto_ns()
        kernel.mod_timer_rel(sock.rto_timer, to_jiffies(rto),
                             site=SITE_RTO)
        sock.rto_timer.function = self._rto_fired
        if self.stack.lost():
            return                                    # wait for the RTO
        rtt = self.stack.sample_rtt()
        kernel.engine.call_after(rtt, self._acked, rtt)

    def _rto_fired(self, _timer: KernelTimer) -> None:
        if self.closed:
            return
        self.retransmits += 1
        if self.retransmits > 15:      # tcp_retries2: give up
            self._close()
            return
        # Exponential backoff on retransmission, as TCP does.
        kernel = self.stack.kernel
        sock = self.sock
        backoff = min(sock.rtt.rto_ns() * (1 << self.retransmits),
                      TCP_RTO_MAX_NS)
        kernel.mod_timer_rel(sock.rto_timer, to_jiffies(backoff))
        rtt = self.stack.sample_rtt()
        if not self.stack.lost():
            kernel.engine.call_after(rtt, self._acked, rtt)

    def _acked(self, rtt_ns: int) -> None:
        if self.closed:
            return
        sock = self.sock
        sock.rtt.sample(rtt_ns)
        if sock.rto_timer.pending:
            self.stack.kernel.del_timer(sock.rto_timer)
        self.retransmits = 0
        self._next_segment()

    def _keepalive_probe(self, _timer: KernelTimer) -> None:
        if not self.closed:
            self.stack.kernel.mod_timer_rel(
                self.sock.keepalive_timer, to_jiffies(TCP_KEEPALIVE_NS))

    def _close(self) -> None:
        if self.closed:
            return
        self.closed = True
        self.stack.enter_time_wait(self.sock)
        self.sock.release()
        if self.on_close is not None:
            self.on_close()


class ArpCache:
    """ARP neighbour timers.

    Periodic housekeeping at 2 s and 4 s, cache flush at 8 s, and a
    per-entry 5 s reachability timeout that LAN activity cancels at a
    uniformly random fraction of its life — reproducing the 5 s column
    with scattered cancellations the paper attributes to departmental
    LAN traffic (Section 4.3).
    """

    def __init__(self, kernel: LinuxKernel, rng: RngStream, *,
                 lan_event_mean_ns: int = seconds(4), entries: int = 3):
        self.kernel = kernel
        self.rng = rng
        self.lan_event_mean_ns = lan_event_mean_ns
        self.periodic = [
            PeriodicKernelTimer(kernel, name="neigh-periodic",
                                period_ns=seconds(2),
                                site=("neigh_table_init",
                                      "neigh_periodic_timer", "__mod_timer")),
            PeriodicKernelTimer(kernel, name="neigh-gc", period_ns=seconds(4),
                                site=("neigh_table_init", "neigh_periodic_work",
                                      "__mod_timer")),
            PeriodicKernelTimer(kernel, name="arp-flush", period_ns=seconds(8),
                                site=("rt_run_flush", "rt_secret_rebuild",
                                      "__mod_timer")),
        ]
        self.entries = [
            kernel.init_timer(self._entry_expired, site=SITE_ARP_TIMEOUT,
                              owner=kernel.tasks.kernel)
            for _ in range(entries)]

    def start(self) -> None:
        for timer in self.periodic:
            timer.start()
        for entry in self.entries:
            self._arm_entry(entry)

    def _arm_entry(self, entry: KernelTimer) -> None:
        self.kernel.mod_timer_rel(entry, to_jiffies(seconds(5)))
        # LAN traffic confirms reachability at a random point; if that
        # happens before 5 s the timer is cancelled and re-armed later.
        confirm = int(self.rng.exponential(self.lan_event_mean_ns))
        self.kernel.engine.call_after(confirm, self._confirmed, entry)

    def _confirmed(self, entry: KernelTimer) -> None:
        if entry.pending:
            self.kernel.del_timer(entry)
            idle = int(self.rng.exponential(self.lan_event_mean_ns))
            self.kernel.engine.call_after(idle, self._arm_entry, entry)

    def _entry_expired(self, entry: KernelTimer) -> None:
        # Entry went stale; it will be re-probed on next LAN activity.
        delay = int(self.rng.exponential(self.lan_event_mean_ns))
        self.kernel.engine.call_after(delay, self._arm_entry, entry)
