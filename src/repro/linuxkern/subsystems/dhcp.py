"""DHCP client lease timers — the paper's overlap-relation example.

Section 5.2 cites RFC 2131 §4.4.5 as the case where "either just t1,
or both t1 and t2 expiring signify a failure... max(t1, t2) is the
expiry time and we may not need t2": a DHCP client holds a renewal
timer T1 (default 50% of the lease) and a rebinding timer T2 (87.5%),
both armed together even though T2 only matters if renewal keeps
failing.

The model arms both timers the stock way, so traces exhibit the
redundant overlap; :meth:`DhcpClient.overlap_graph` declares the
relationship in the Section 5.2 vocabulary so the provenance machinery
can compute the optimisation.
"""

from __future__ import annotations


from ...sim.clock import seconds, to_jiffies
from ...sim.rng import RngStream
from ..kernel import LinuxKernel
from ..timer import KernelTimer
from ...core.provenance import DependencyGraph, Relation

SITE_T1 = ("dhclient", "dhcp_renew_timer", "__mod_timer")
SITE_T2 = ("dhclient", "dhcp_rebind_timer", "__mod_timer")
SITE_EXPIRY = ("dhclient", "dhcp_lease_expiry", "__mod_timer")


class DhcpClient:
    """A DHCP client maintaining one lease with T1/T2/expiry timers."""

    def __init__(self, kernel: LinuxKernel, rng: RngStream, *,
                 lease_ns: int = seconds(3600),
                 server_available: bool = True):
        self.kernel = kernel
        self.rng = rng
        self.lease_ns = lease_ns
        self.server_available = server_available
        self.renewals = 0
        self.rebinds = 0
        self.lease_lost = 0
        task = kernel.tasks.spawn("dhclient")
        self.t1 = kernel.init_timer(self._t1_fired, site=SITE_T1,
                                    owner=task, domain="user")
        self.t2 = kernel.init_timer(self._t2_fired, site=SITE_T2,
                                    owner=task, domain="user")
        self.expiry = kernel.init_timer(self._lease_expired,
                                        site=SITE_EXPIRY, owner=task,
                                        domain="user")

    # -- protocol ------------------------------------------------------------

    @property
    def t1_ns(self) -> int:
        return self.lease_ns // 2                   # RFC 2131 default

    @property
    def t2_ns(self) -> int:
        return self.lease_ns * 7 // 8               # 0.875 * lease

    def start(self) -> None:
        """Lease acquired: arm all three timers together (the stock,
        overlap-redundant arrangement)."""
        self._arm_all()

    def _arm_all(self) -> None:
        self.kernel.mod_timer_rel(self.t1, to_jiffies(self.t1_ns),
                                  timeout_ns=self.t1_ns)
        self.kernel.mod_timer_rel(self.t2, to_jiffies(self.t2_ns),
                                  timeout_ns=self.t2_ns)
        self.kernel.mod_timer_rel(self.expiry, to_jiffies(self.lease_ns),
                                  timeout_ns=self.lease_ns)

    def _t1_fired(self, _timer: KernelTimer) -> None:
        """RENEWING: unicast request to the leasing server."""
        if self.server_available:
            delay = max(1, int(self.rng.exponential(50_000_000)))
            self.kernel.engine.call_after(delay, self._renewed)

    def _renewed(self) -> None:
        self.renewals += 1
        # Fresh lease: cancel the outstanding T2/expiry and re-arm.
        if self.t2.pending:
            self.kernel.del_timer(self.t2)
        if self.expiry.pending:
            self.kernel.del_timer(self.expiry)
        self._arm_all()

    def _t2_fired(self, _timer: KernelTimer) -> None:
        """REBINDING: broadcast to any server."""
        self.rebinds += 1

    def _lease_expired(self, _timer: KernelTimer) -> None:
        self.lease_lost += 1
        if self.t1.pending:
            self.kernel.del_timer(self.t1)
        if self.t2.pending:
            self.kernel.del_timer(self.t2)
        # Restart discovery after a beat.
        self.kernel.engine.call_after(seconds(10), self._arm_all)

    # -- Section 5.2 declaration ----------------------------------------------

    def overlap_graph(self) -> DependencyGraph:
        """The timers' relationships, declared explicitly.

        T2 overlaps T1 in the OVERLAP_MAX sense (RFC 2131 §4.4.5 via
        the paper): only the later deadline ultimately matters, so a
        dependency rewrite arms one timer at a time.
        """
        graph = DependencyGraph()
        graph.declare("dhcp-t1", self.t1_ns, layer="dhcp")
        graph.declare("dhcp-t2", self.t2_ns, layer="dhcp")
        graph.declare("dhcp-expiry", self.lease_ns, layer="dhcp")
        graph.relate("dhcp-t2", "dhcp-t1", Relation.OVERLAP_MAX)
        graph.relate("dhcp-expiry", "dhcp-t2", Relation.OVERLAP_MAX)
        return graph

    def concurrent_timers_stock(self) -> int:
        """Timers pending at once today."""
        return sum(t.pending for t in (self.t1, self.t2, self.expiry))

    def concurrent_timers_rewritten(self) -> int:
        """Timers pending at once after the 5.2 dependency rewrite:
        T1 only; T2 armed on T1's expiry for the remainder; expiry
        armed on T2's."""
        return 1
