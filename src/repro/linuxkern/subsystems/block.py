"""Block layer and filesystem journaling timers.

Covers three Table 3 / Figure 11 citizens:

* **Block I/O scheduler unplug timer, 4 ms (1 jiffy), class Timeout** —
  armed when a request is queued, cancelled when the queue is unplugged
  by further activity, expiring only when the batch window drains.
* **IDE command timeout, 30 s, class Timeout** — the canonical
  arbitrary round number: armed per command, cancelled a few
  milliseconds later when the command completes.  This timer gave the
  paper its title: its expiry ratio is so low that nearly every instance
  is cancelled below 0.1% of its set value.
* **Journal commit timer (kjournald), ~5 s** — the cluster of points
  between 80% and 100% at 5 seconds in Figure 11: under write load the
  transaction usually fills slightly *before* the commit interval ends,
  so the timer is cancelled late in its life.  The commit interval
  itself adapts mildly to load, which the paper calls out as one of the
  few adaptive kernel timeouts.
"""

from __future__ import annotations


from ...sim.clock import MILLISECOND, jiffies, millis, seconds, \
    to_jiffies
from ...sim.rng import RngStream
from ..kernel import LinuxKernel
from ..timer import KernelTimer

SITE_UNPLUG = ("__make_request", "blk_plug_device", "__mod_timer")
SITE_IDE = ("ide_do_request", "ide_set_handler", "__mod_timer")
SITE_JOURNAL = ("kjournald", "journal_commit_transaction",
                "start_this_handle", "__mod_timer")

IDE_COMMAND_TIMEOUT_NS = seconds(30)
UNPLUG_TIMEOUT_NS = jiffies(1)          # 4 ms at HZ=250


class BlockLayer:
    """Disk request timers, driven by an I/O arrival process."""

    def __init__(self, kernel: LinuxKernel, rng: RngStream, *,
                 io_burst_mean_ns: int = seconds(5),
                 service_mean_ns: int = millis(6)):
        self.kernel = kernel
        self.rng = rng
        self.io_burst_mean_ns = io_burst_mean_ns
        self.service_mean_ns = service_mean_ns
        owner = kernel.tasks.kernel
        self.unplug_timer = kernel.init_timer(self._unplug_fired,
                                              site=SITE_UNPLUG, owner=owner)
        self.ide_timer = kernel.init_timer(self._ide_timed_out,
                                           site=SITE_IDE, owner=owner)
        self.commands_issued = 0
        self.command_timeouts = 0
        self.started = False

    def start(self) -> None:
        """Begin generating background I/O bursts."""
        self.started = True
        self._schedule_burst()

    def _schedule_burst(self) -> None:
        delay = int(self.rng.exponential(self.io_burst_mean_ns))
        self.kernel.engine.call_after(delay, self._burst)

    def _burst(self) -> None:
        if not self.started:
            return
        requests = 1 + self.rng.randrange(4)
        self.submit_requests(requests)
        self._schedule_burst()

    # -- the plug/unplug dance --------------------------------------------

    def submit_requests(self, count: int) -> None:
        """Queue ``count`` requests; plugs the queue, then services them."""
        self._plug(count)

    def _plug(self, remaining: int) -> None:
        self.kernel.mod_timer_rel(self.unplug_timer,
                                  to_jiffies(UNPLUG_TIMEOUT_NS))
        if self.rng.random() < 0.93:
            # The queue fills past the unplug threshold almost at once
            # (back-to-back requests from readahead), so an explicit
            # unplug cancels the timer within microseconds — which is
            # why Table 3 classifies the 4 ms plug timer as a Timeout.
            cancel_at = 50_000 + int(self.rng.exponential(150_000))
            self.kernel.engine.call_after(cancel_at, self._explicit_unplug,
                                          remaining)
        else:
            self.kernel.engine.call_after(UNPLUG_TIMEOUT_NS + MILLISECOND,
                                          self._dispatch_chain, remaining)

    def _explicit_unplug(self, remaining: int) -> None:
        if self.unplug_timer.pending:
            self.kernel.del_timer(self.unplug_timer)
        self._dispatch_chain(remaining)

    def _dispatch_chain(self, remaining: int) -> None:
        self._dispatch()
        if remaining > 1:
            gap = max(1, int(self.rng.exponential(2 * MILLISECOND)))
            self.kernel.engine.call_after(gap, self._plug, remaining - 1)

    def _unplug_fired(self, _timer: KernelTimer) -> None:
        pass   # dispatch is modelled by _dispatch below

    def _dispatch(self) -> None:
        if self.ide_timer.pending:
            return       # previous command still in flight; queue behind it
        self._issue_command()

    def _issue_command(self) -> None:
        self.commands_issued += 1
        self.kernel.mod_timer_rel(self.ide_timer,
                                  to_jiffies(IDE_COMMAND_TIMEOUT_NS))
        service = int(self.rng.exponential(self.service_mean_ns))
        self.kernel.engine.call_after(service, self._command_done)

    def _command_done(self) -> None:
        if self.ide_timer.pending:
            self.kernel.del_timer(self.ide_timer)

    def _ide_timed_out(self, _timer: KernelTimer) -> None:
        self.command_timeouts += 1


class JournalDaemon:
    """kjournald's commit timer (ext3, 5 s default interval)."""

    def __init__(self, kernel: LinuxKernel, rng: RngStream, *,
                 commit_interval_ns: int = seconds(5),
                 write_load: float = 0.0):
        self.kernel = kernel
        self.rng = rng
        self.base_interval_ns = commit_interval_ns
        #: 0 = idle system (timer mostly expires); 1 = heavy writes
        #: (transaction fills early, timer mostly cancelled late).
        self.write_load = write_load
        self.commits = 0
        task = kernel.tasks.kernel_thread("kjournald")
        self.timer = kernel.init_timer(self._interval_expired,
                                       site=SITE_JOURNAL, owner=task)
        self.started = False

    def start(self) -> None:
        self.started = True
        self._arm()

    def stop(self) -> None:
        self.started = False
        if self.timer.pending:
            self.kernel.del_timer(self.timer)

    def _arm(self) -> None:
        # The commit interval adapts mildly to observed load — one of
        # the paper's rare adaptive kernel timeouts.
        adjust = 1.0 - 0.04 * self.write_load * self.rng.random()
        interval = int(self.base_interval_ns * adjust)
        self.kernel.mod_timer_rel(self.timer, to_jiffies(interval))
        if self.write_load > 0 and self.rng.random() < self.write_load:
            # Transaction fills before the interval elapses; commit is
            # triggered early and the timer cancelled at 80–100% of its
            # life (Figure 11's cluster).
            frac = 0.80 + 0.20 * self.rng.random()
            self.kernel.engine.call_after(int(interval * frac),
                                          self._early_commit)

    def _early_commit(self) -> None:
        if self.timer.pending:
            self.kernel.del_timer(self.timer)
            self._commit()

    def _interval_expired(self, _timer: KernelTimer) -> None:
        self._commit()

    def _commit(self) -> None:
        self.commits += 1
        if self.started:
            self._arm()
