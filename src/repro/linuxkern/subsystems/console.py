"""Console blank timer — the paper's example of a kernel *watchdog*.

"The timer never expires: before its expiry time, it is re-set to the
same relative value in the future... An example is the Linux console
blank timeout" (Section 4.1.1).  Every key press or console write
defers the 10-minute blank deadline; only a genuinely idle console lets
it fire.
"""

from __future__ import annotations

from typing import Optional

from ...sim.clock import seconds, to_jiffies
from ...sim.rng import RngStream
from ..kernel import LinuxKernel
from ..timer import KernelTimer

SITE_BLANK = ("vt_console_print", "poke_blanked_console", "mod_timer",
              "__mod_timer")

BLANK_INTERVAL_NS = seconds(600)


class ConsoleBlanker:
    """The VT blanking watchdog, deferred by console activity."""

    def __init__(self, kernel: LinuxKernel, rng: Optional[RngStream] = None,
                 *, activity_mean_ns: Optional[int] = None,
                 blank_interval_ns: int = BLANK_INTERVAL_NS):
        self.kernel = kernel
        self.rng = rng
        #: Mean interval between console activity events; ``None``
        #: means a silent console (the timer will expire once).
        self.activity_mean_ns = activity_mean_ns
        self.blank_interval_ns = blank_interval_ns
        self.blanked = False
        self.blank_count = 0
        self.timer = kernel.init_timer(self._blank, site=SITE_BLANK,
                                       owner=kernel.tasks.kernel)

    def start(self) -> None:
        self._defer()
        if self.activity_mean_ns is not None and self.rng is not None:
            self._schedule_activity()

    def _schedule_activity(self) -> None:
        delay = int(self.rng.exponential(self.activity_mean_ns))
        self.kernel.engine.call_after(delay, self._activity)

    def _activity(self) -> None:
        self.touch()
        self._schedule_activity()

    def touch(self) -> None:
        """Console activity: unblank if needed, defer the watchdog."""
        self.blanked = False
        self._defer()

    def _defer(self) -> None:
        # mod_timer on a pending timer re-arms without a cancel record —
        # the watchdog trace signature.
        self.kernel.mod_timer_rel(self.timer,
                                  to_jiffies(self.blank_interval_ns))

    def _blank(self, _timer: KernelTimer) -> None:
        self.blanked = True
        self.blank_count += 1
