"""Linux 2.6.23 timer subsystem model (the paper's Linux side).

The package models the standard jiffy-resolution timer wheel, the
hrtimer facility, the syscall entry points applications set timeouts
through, and the kernel subsystems whose timers populate the paper's
Table 3.
"""

from .hrtimer import Hrtimer, HrtimerBase
from .jiffies import msecs_to_jiffies, round_jiffies, round_jiffies_relative
from .kernel import LinuxKernel
from .softtimers import SoftTimer, SoftTimerFacility
from .syscalls import BlockedCall, SyscallInterface, WakeReason
from .timer_stats import StatsEntry, TimerStats
from .timer import KernelTimer, TimerBase
from .wheel import TimerWheel, WheelTimer

__all__ = [
    "Hrtimer", "HrtimerBase", "msecs_to_jiffies", "round_jiffies",
    "round_jiffies_relative", "LinuxKernel", "BlockedCall",
    "SyscallInterface", "WakeReason", "KernelTimer", "TimerBase",
    "StatsEntry", "TimerStats", "SoftTimer", "SoftTimerFacility",
    "TimerWheel", "WheelTimer",
]
